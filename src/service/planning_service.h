#ifndef SQPR_SERVICE_PLANNING_SERVICE_H_
#define SQPR_SERVICE_PLANNING_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/task_queue.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "monitor/resource_monitor.h"
#include "planner/sqpr/sqpr_planner.h"
#include "service/event_loop.h"
#include "service/plan_cache.h"
#include "service/replan_policy.h"
#include "sim/cluster_sim.h"
#include "telemetry/measurement_engine.h"

namespace sqpr {

/// Stall/SLO watchdog thresholds, all wall-clock milliseconds and all
/// off (0) by default. The service's decisions run off the virtual
/// clock; these budgets watch the *wall* side — how long one virtual
/// instant takes the loop thread — and count breaches in ServiceStats.
/// Pure observation: breaches never gate behaviour, and with budgets
/// set to extremes (tiny => every sample breaches, huge => none) the
/// counts are deterministic because the sample counts are.
struct WatchdogOptions {
  /// Event-loop stall detector: one Step() whose wall time exceeds this
  /// counts as a stall (ServiceStats::loop_stalls, worst_stall_ms) —
  /// the virtual clock stood still while the wall clock ran away.
  double event_stall_ms = 0.0;
  /// Per-stage round-latency budgets, one per ServiceStats histogram;
  /// each sample over budget bumps the matching *_budget_breaches.
  double admit_budget_ms = 0.0;
  double solve_budget_ms = 0.0;
  double commit_budget_ms = 0.0;
  double barrier_budget_ms = 0.0;
  double measure_budget_ms = 0.0;
};

/// Configuration of the continuous planning service.
struct ServiceOptions {
  SqprPlanner::Options planner;
  DriftOptions drift;
  ReplanPolicyOptions replan;
  /// Consult the plan-reuse cache on arrivals: exact hits admit without
  /// a solve (dedup or one serving arc); misses fall through to the
  /// reduced MILP.
  bool use_plan_cache = true;
  /// After a host (re)joins, retry recently rejected queries through the
  /// bounded re-planning rounds.
  bool retry_rejected_on_join = true;
  /// Cap on the rejected queries remembered for such retries.
  int max_rejected_remembered = 64;
  /// §IV-C closed loop: every `telemetry.measure_period` ticks the
  /// service measures its *own* committed deployment (ClusterSim under
  /// the telemetry rate model's ground-truth rates) and feeds the result
  /// through the same monitor path scripted kMonitorReport events take —
  /// drift detection and re-planning with zero scripted measurements.
  /// kRateDirective events steer the ground truth.
  bool closed_loop = false;
  TelemetryOptions telemetry;
  /// Test-only injection point: invoked on the loop thread between an
  /// arrival's speculative ProposeAdmission and its CommitProposal —
  /// the one propose/commit adjacency the pipelined service still
  /// guarantees by construction. Mutating the planner here forces the
  /// strict version gate to bounce the arrival's proposal, driving the
  /// conflict-fallback path deterministically at any pipeline depth
  /// (service_test uses it at depth 1). Never invoked for the
  /// fallback's own re-solve. Leave null outside tests.
  std::function<void(SqprPlanner&)> inject_between_propose_and_commit;
  /// Decision audit journal (null = auditing off, zero cost). Emission
  /// happens on the loop thread at commit points only, so the canonical
  /// record stream inherits the determinism contract: byte-identical
  /// across workers {0,1,4} x pipeline depth {1,2,4} (see
  /// obs/audit.h and docs/ARCHITECTURE.md §7). Must outlive the
  /// service. Auditing reads state and never gates behaviour — replay
  /// fingerprints are bit-identical with it on or off.
  obs::AuditJournal* audit = nullptr;
  /// Stall/SLO watchdog budgets (all off by default).
  WatchdogOptions watchdog;
};

/// What happened while processing one event.
struct EventOutcome {
  Event event;
  /// Arrival disposition (meaningful for kQueryArrival only).
  bool admitted = false;
  bool already_served = false;
  bool via_cache = false;
  /// Materialised proper-subquery candidates the cache surfaced for the
  /// arrival (reuse opportunities the MILP can exploit).
  int reuse_candidates = 0;
  /// Queries evicted by failure fallout or shortage this event.
  int evicted = 0;
  /// A closed-loop self-measurement fired while processing this event
  /// (meaningful for kTick in closed-loop mode only).
  bool measured = false;
  /// Re-planning round results drained while processing this event.
  int replanned_admitted = 0;
  int replanned_rejected = 0;
  /// Wall-clock latency of processing the event end to end.
  double wall_ms = 0.0;

  std::string ToString(const Catalog& catalog) const;
};

/// Aggregate counters over the service lifetime.
struct ServiceStats {
  int64_t events = 0;
  int64_t arrivals = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t dedup_hits = 0;
  int64_t cache_fast_path = 0;
  int64_t departures = 0;
  int64_t host_failures = 0;
  int64_t host_joins = 0;
  int64_t monitor_reports = 0;
  int64_t ticks = 0;
  /// Closed-loop counters (§IV-C): rate-trajectory directives consumed,
  /// self-measurements performed on measuring ticks, and measurements
  /// whose drift cycle evicted at least one query — i.e. the re-planning
  /// rounds the service triggered *by itself*, with no scripted
  /// kMonitorReport event anywhere in the trace.
  int64_t rate_directives = 0;
  int64_t measurement_ticks = 0;
  int64_t auto_replan_rounds = 0;
  /// Self-measurements served by the analytic mode (deployment ledgers
  /// scaled by truth/estimate ratios — no ClusterSim run). Equals
  /// measurement_ticks when telemetry.mode == kAnalytic, 0 in engine
  /// mode.
  int64_t analytic_ticks = 0;
  /// Reuse-index maintenance: events whose deployment changes were
  /// applied to the PlanCache as incremental deltas (additive commits,
  /// serving-only departures) instead of a full grounded-fixpoint
  /// rebuild. Rebuild/no-op counts live on the PlanCache itself.
  int64_t cache_delta_updates = 0;
  /// Bytes MakeSnapshot copied on the loop thread to hand re-planning
  /// rounds their inputs (overlay + admitted list, plus the full
  /// deployment on the amortised rebases) — O(changes since the last
  /// *rebase*, bounded by the rebase threshold) instead of the retired
  /// per-round planner deep copy.
  int64_t snapshot_bytes_copied = 0;
  /// Snapshot rebases (full-copy epochs) within the count above.
  int64_t snapshot_rebases = 0;
  int64_t evictions = 0;
  int64_t replan_rounds = 0;
  int64_t replanned_admitted = 0;
  int64_t replanned_rejected = 0;
  /// Rounds entered into the speculative pipeline (every worker count
  /// runs it; with workers >= 1 the solves go to the pool), and
  /// proposals that no longer applied at commit time and were re-solved
  /// synchronously on the loop thread. Neither is pipeline-depth
  /// invariant: deeper pipelines dispatch the same rounds earlier
  /// (sometimes re-dispatching after a barrier unwind) and speculate
  /// across not-yet-committed older rounds, so they conflict more —
  /// the price of starting solves early. The *committed* outcomes stay
  /// bit-identical; see docs/ARCHITECTURE.md §4.
  int64_t replan_dispatches = 0;
  int64_t commit_conflicts = 0;
  /// Speculative rounds unwound — proposals discarded, queries returned
  /// to the front of the scheduler — because a barrier event (monitor
  /// report, host failure/join, measuring tick) retired the pipeline
  /// before their pinned commit points. Only rounds *past* the oldest
  /// unwind (the oldest commits at the barrier, exactly as depth 1
  /// would); depth 1 therefore never unwinds.
  int64_t round_unwinds = 0;
  /// Cache-miss arrival solves performed while a re-planning round was
  /// in flight (dispatched, not yet committed) — the overlap the
  /// thread-safe catalog buys. Commit points are logical, so the count
  /// is identical for every worker count; with workers >= 1 each such
  /// solve genuinely overlaps background solving (the stall the
  /// pre-speculative service paid as barrier wait), which is the
  /// latency win bench_service_churn measures.
  int64_t overlapped_arrival_solves = 0;
  /// Incremental-solve counters (the planner's model cache and warm
  /// starts). MILP solves either patch a cached model skeleton in
  /// O(bounds) — model_patches — or build one from scratch —
  /// model_rebuilds (always on a structure's first solve, and after a
  /// rate/spec epoch bump invalidates the cache). warm_starts counts
  /// solves that installed the previous round's root LP basis;
  /// basis_discards counts bases rejected because presolve eliminated a
  /// different column set than when the basis was harvested (the solve
  /// then cold-starts — slower, never wrong).
  int64_t model_patches = 0;
  int64_t model_rebuilds = 0;
  int64_t warm_starts = 0;
  int64_t basis_discards = 0;
  /// Arrivals rejected because the catalog's bounded stores could not
  /// intern the query's join closure (ResourceExhausted) — a permanent
  /// condition until catalog GC exists, so these queries are *not*
  /// remembered for retry-on-join. Reason-coded in the audit journal as
  /// reject.exhausted.
  int64_t catalog_exhausted = 0;
  /// Degraded-mode solving (docs/ARCHITECTURE.md "Durability & degraded
  /// modes"): MILP solves that breached the per-solve wall budget
  /// (planner.solve_deadline_ms) and committed a best-incumbent or
  /// fell through, and admissions that came from the greedy heuristic
  /// fallback instead of a MILP solution. Wall-clock-driven with a
  /// positive budget (hence excluded from replay-invariance ties, like
  /// the watchdog counters); deterministic under the negative
  /// instantly-expired test budget.
  int64_t solver_deadline_breaches = 0;
  int64_t heuristic_fallbacks = 0;
  double total_wall_ms = 0.0;
  double max_event_ms = 0.0;

  // ---- Per-stage latency, from the loop thread's perspective. ----
  //
  // Log-bucketed histograms (obs::Histogram): count/sum/min/max exact,
  // p50/p95/p99 resolved from buckets in O(1) memory. These replace the
  // RunningStats + bounded-sample-window pair the service grew
  // organically — quantiles no longer need sample storage or a re-sort
  // per report.
  /// One admission through the cache-then-solve path (arrivals and
  /// re-planning re-solves), excluding any in-flight-round retirement
  /// it triggered — that time is reported under barrier/commit/solve.
  obs::Histogram admit_ms;
  /// Individual planner solves: inline arrival/re-planning solves and
  /// worker-side speculative solves alike.
  obs::Histogram solve_ms;
  /// Applying one worker proposal to the committed state.
  obs::Histogram commit_ms;
  /// Loop-thread blocking waits for an in-flight round to finish.
  obs::Histogram barrier_ms;
  /// One §IV-C self-measurement (closed loop only): the whole
  /// Measure() call — ClusterSim execution in engine mode, the ledger
  /// scan in analytic mode. The per-measuring-tick cost the analytic
  /// mode exists to shrink; bench_service_churn compares the two.
  obs::Histogram measure_ms;

  // ---- Stall/SLO watchdog (WatchdogOptions; all 0 when budgets are
  // off). Wall-clock observations — deterministic only at budget
  // extremes (see WatchdogOptions), hence excluded from the replay
  // invariance ties except in the dedicated watchdog tests. ----
  /// Step() calls whose wall time exceeded event_stall_ms, and the
  /// worst offender.
  int64_t loop_stalls = 0;
  double worst_stall_ms = 0.0;
  /// Per-stage budget breaches, one counter per latency histogram.
  int64_t admit_budget_breaches = 0;
  int64_t solve_budget_breaches = 0;
  int64_t commit_budget_breaches = 0;
  int64_t barrier_budget_breaches = 0;
  int64_t measure_budget_breaches = 0;
};

/// Publishes a ServiceStats snapshot into a MetricsRegistry under the
/// "service." prefix — counters incremented by their delta since the
/// previous Publish (registry counters are monotonic), histograms
/// copied wholesale. Drives the periodic metrics exposition:
/// tools/sqpr_service and bench_service_churn call Publish once per
/// export interval, then MetricsRegistry::TakeSnapshot()/DeltaSince.
class ServiceMetricsPublisher {
 public:
  explicit ServiceMetricsPublisher(obs::MetricsRegistry* registry)
      : registry_(registry) {}

  void Publish(const ServiceStats& stats);

 private:
  void Bump(const char* name, int64_t value, int64_t* last);

  obs::MetricsRegistry* registry_;
  ServiceStats last_;
};

/// The long-running DISSP-side planning loop the paper assumes around
/// the SQPR planner (§IV): queries arrive and depart over time, hosts
/// join and fail, and the resource monitor's reports trigger adaptive
/// re-planning. The service owns the planner, the resource monitor, a
/// plan-reuse cache and a deterministic event queue driven by an
/// injectable virtual clock; it updates the committed Deployment
/// incrementally, event by event.
///
/// Event semantics:
///   kQueryArrival   — admit via cache fast path or reduced MILP solve;
///   kQueryDeparture — remove + garbage-collect unshared support;
///   kHostFailure    — zero the host's budgets, evict its fallout and
///                     queue the evicted queries for re-admission;
///   kHostJoin       — restore the host's budgets; optionally retry
///                     recently rejected queries;
///   kMonitorReport  — §IV-B drift analysis: install measured rates,
///                     evict while over budget, queue affected queries;
///   kTick           — drain pending re-planning rounds; in closed-loop
///                     mode every measure_period-th tick first performs
///                     a §IV-C self-measurement (simulate the committed
///                     deployment under the telemetry rate model's true
///                     rates) and feeds it through the same §IV-B path;
///   kRateDirective  — install a ground-truth rate trajectory into the
///                     closed loop's rate model (ignored open-loop).
/// Every event ends by committing the oldest in-flight re-admission
/// round and topping the pipeline back up with the next bounded ones,
/// so planning latency per event stays bounded no matter how large a
/// failure or drift report is.
///
/// Threading: re-planning rounds run through a speculative
/// propose/commit pipeline at *every* worker count, up to
/// ReplanPolicyOptions::pipeline_depth rounds deep. Each round pins its
/// own planner snapshot at dispatch and commits at a fixed logical
/// point: exactly one round — the oldest — commits per Step(), FIFO in
/// dispatch order, so a round dispatched at the end of event N commits
/// at the end of event N+1 regardless of how many younger rounds were
/// dispatched behind it. Depth only moves dispatches earlier, never
/// commits: committed deployments are bit-identical across worker
/// counts AND pipeline depths. Rounds beyond the oldest speculate
/// against snapshots that older commits may invalidate; the planner's
/// strict structure-version gate bounces any stale proposal at its
/// pinned commit point (installing none of its solve artifacts) and the
/// service re-solves it inline against the live state — deterministic,
/// since it depends only on the commit order (the commit_conflicts
/// counter; warm-started, so the retry is cheap). With workers >= 1 the
/// solves run on a pool against immutable snapshots while the loop
/// thread keeps consuming events; with workers == 0 they run
/// synchronously at dispatch against the live planner — the same state
/// the snapshot would capture. Cache-miss arrivals solve speculatively
/// on the loop thread (WarmCatalog + ProposeAdmission +
/// CommitProposal) *without* retiring in-flight rounds: catalog
/// interning is internally synchronised and workers only ever read
/// published entries. Events that mutate state workers read in place —
/// monitor reports (measured-rate installation), host failure/join
/// (spec swaps), measuring ticks — still retire the whole pipeline
/// first: the oldest round commits (its pinned point coincides with
/// the barrier), and every younger round *unwinds* — proposals
/// dropped, un-departed queries returned to the front of the scheduler
/// — so the post-barrier schedule is exactly the one depth 1 would
/// have. See docs/ARCHITECTURE.md for the full model and determinism
/// contract.
class PlanningService {
 public:
  /// The service mutates `cluster` (host failure/rejoin) and `catalog`
  /// (measured-rate installation); both must outlive it.
  PlanningService(Cluster* cluster, Catalog* catalog, ServiceOptions options);

  /// Schedules an event. Events may be enqueued in any order; they are
  /// consumed in (timestamp, enqueue order). Rejects events timestamped
  /// before the virtual clock (already-consumed past).
  Status Enqueue(Event event);

  bool HasPendingEvents() const { return !queue_.empty(); }

  /// Consumes the next event and returns what happened.
  Result<EventOutcome> Step();

  /// Drains the queue; outcomes are appended when `outcomes` != nullptr.
  /// Ends by retiring the in-flight pipeline (commit the oldest round,
  /// unwind the rest), so the returned-to deployment and the pending
  /// backlog are bit-identical across pipeline depths.
  Status RunUntilIdle(std::vector<EventOutcome>* outcomes = nullptr);

  /// Retires the in-flight pipeline, if any (no-op when empty): waits
  /// for and commits the *oldest* round — the one whose pinned commit
  /// point is due — and unwinds younger speculative rounds back to the
  /// front of the scheduler, exactly as a barrier event would. Queued
  /// backlog stays pending. Call after stepping the service manually to
  /// a stopping point; the resulting state matches a depth-1 service
  /// stopped at the same point.
  void FinishInFlightRound();

  /// Translates a cluster-simulation report into a monitor-report event
  /// (base-stream rates + per-host-CPU) — the §IV-C loop where DISSP
  /// hosts sample utilisation and rates and feed the planner.
  Event MonitorReportFromSim(int64_t time_ms, const SimReport& report) const;

  /// Closes the decision audit journal (no-op when auditing is off):
  /// emits close.admitted (one record per admitted query, sorted),
  /// close.pending (one per scheduler-pending candidate, FIFO) and the
  /// journal.close terminator, so tools/sqpr_inspect.py can gate
  /// lifecycle completeness against the service's own final state. Call
  /// once, after FinishInFlightRound / RunUntilIdle.
  void FinalizeAudit();

  const SqprPlanner& planner() const { return planner_; }
  /// Closed-loop telemetry engine; null when `closed_loop` is off.
  /// Non-const access exists so callers (tools, tests) can seed the
  /// ground-truth rate model directly instead of via trace directives.
  MeasurementEngine* telemetry() { return telemetry_.get(); }
  const MeasurementEngine* telemetry() const { return telemetry_.get(); }
  const Deployment& deployment() const { return planner_.deployment(); }
  const PlanCache& plan_cache() const { return cache_; }
  const ServiceStats& stats() const { return stats_; }
  const VirtualClock& clock() const { return clock_; }
  const std::vector<StreamId>& admitted_queries() const {
    return planner_.admitted_queries();
  }
  bool HostActive(HostId h) const;
  /// Re-planning candidates not yet resolved: queued in the scheduler
  /// plus those in flight, minus in-flight queries that departed after
  /// dispatch (their proposals will be dropped, matching the scheduler
  /// discard a depth-1 service would have performed — the subtraction
  /// keeps this count pipeline-depth invariant).
  int pending_replans() const {
    int pending = static_cast<int>(scheduler_.pending());
    for (const InFlightRound& round : inflight_) {
      pending +=
          static_cast<int>(round.queries.size() - round.discards.size());
    }
    return pending;
  }
  /// Worker threads solving re-planning rounds (0 = solves run on the
  /// loop thread at dispatch; the pipeline and results are identical).
  int workers() const { return pool_ ? pool_->num_threads() : 0; }

  // ---- Crash durability (implemented in src/service/checkpoint.cc;
  // see docs/ARCHITECTURE.md "Durability & degraded modes"). ----

  /// Serializes the full service state as a sqpr-checkpoint-v1 JSON
  /// document. A checkpoint is a *pipeline barrier*: the call first
  /// retires any in-flight rounds (commit the oldest, unwind the rest),
  /// syncs the plan cache and canonicalizes the deployment ledgers —
  /// the same quiesce every barrier event performs — so the serialized
  /// state is worker/depth-invariant and the exported bytes are
  /// byte-identical across worker counts and pipeline depths. Restoring
  /// it into a freshly constructed service (same cluster/catalog/
  /// options provenance) and replaying the remaining events produces
  /// bit-identical committed deployments to an uninterrupted run that
  /// checkpointed at the same point.
  Result<std::string> ExportCheckpoint();

  /// Reinstates an ExportCheckpoint document into this service. The
  /// service must be freshly constructed — no events consumed — over a
  /// catalog rebuilt exactly as the checkpointing process built it
  /// before its first event (same workload generation, same seed) and
  /// the same ServiceOptions. Returns InvalidArgument with a quoted
  /// reason on version mismatch or any malformed/missing field; unknown
  /// fields are ignored (forward compatibility). On error the service
  /// is not safe to keep using. stats().events tells the caller how
  /// many trace events the checkpoint had consumed — i.e. where to
  /// resume the trace.
  Status RestoreCheckpoint(const std::string& json);

 private:
  /// One re-planning round in the speculative pipeline. With workers,
  /// tasks capture the shared_ptr state (never `this`), so destruction
  /// order is never a hazard: the pool joins before anything else is
  /// torn down. With workers == 0 the proposals are already solved and
  /// the latch already open when the round enters flight.
  struct InFlightRound {
    /// Monotonic dispatch id, tagged onto the round's
    /// dispatch/commit/unwind trace spans so a flight recording
    /// correlates the three ends of one round across the pipeline.
    int64_t id = 0;
    std::vector<StreamId> queries;
    /// Queries that departed after this round dispatched; their
    /// proposals are dropped at commit/unwind (the async twin of
    /// ReplanScheduler::Discard). Scoped per round: with several rounds
    /// in flight, a departure must only suppress the copy of the query
    /// in the round that actually carries it.
    std::set<StreamId> discards;
    /// Copy-on-write view of the planner the solves run against (null
    /// in inline mode, which solves against the live planner at
    /// dispatch — the same state the snapshot materialises). Shared
    /// core + O(changes) overlay; see SqprPlanner::MakeSnapshot.
    std::shared_ptr<const SqprPlanner::Snapshot> snapshot;
    /// Slot i is written by the task solving queries[i]; the latch's
    /// CountDown/Wait pair publishes the writes to the loop thread.
    std::shared_ptr<std::vector<Result<AdmissionProposal>>> proposals;
    std::shared_ptr<Latch> latch;
  };

  void HandleArrival(const Event& event, EventOutcome* outcome);
  void HandleDeparture(const Event& event, EventOutcome* outcome);
  Status HandleHostFailure(const Event& event, EventOutcome* outcome);
  Status HandleHostJoin(const Event& event, EventOutcome* outcome);
  Status HandleMonitorReport(const Event& event, EventOutcome* outcome);

  /// Shared §IV-B sink of measured data — scripted monitor reports and
  /// closed-loop self-measurements alike: Analyze, then RunDriftCycle
  /// into the bounded re-planning scheduler. Callers cross the monitor
  /// barrier (retire the in-flight round) first: the cycle installs
  /// measured rates in place (Catalog::UpdateBaseRate).
  Status ApplyMonitorData(const std::map<StreamId, double>& measured_rates,
                          const std::vector<double>& cpu_utilization,
                          EventOutcome* outcome);

  /// True on the tick that will fire a closed-loop self-measurement —
  /// used by Step() to retire the in-flight round first (same barrier a
  /// scripted kMonitorReport crosses).
  bool MeasurementDue() const {
    return telemetry_ != nullptr &&
           ticks_since_measure_ + 1 >= telemetry_->options().measure_period;
  }

  /// One §IV-C self-measurement: simulate the committed deployment
  /// under the rate model's current truth, then ApplyMonitorData.
  Status HandleSelfMeasurement(EventOutcome* outcome);

  /// End of every Step(): commits the oldest in-flight round (whose
  /// pinned commit point is this event), then tops the pipeline back up
  /// to pipeline_depth rounds against the state as of this event's
  /// mutations (both worker counts).
  void DrainReplanRounds(EventOutcome* outcome);

  /// Pops the next round off the scheduler, pre-warms the catalog for
  /// its queries (the deterministic interning point) and solves them
  /// speculatively: on the worker pool (workers >= 1) or synchronously
  /// right here (workers == 0). One round per call; DrainReplanRounds
  /// loops it until pipeline_depth rounds are in flight.
  void DispatchReplanRound();

  /// Blocks until the oldest in-flight round (if any) is solved, then
  /// commits its proposals in FIFO order on the calling (loop) thread;
  /// a proposal the strict version gate bounces is re-solved
  /// synchronously. Exactly one round commits per call — the pinned
  /// commit point that keeps committed deployments identical across
  /// pipeline depths.
  void CommitOldestRound(EventOutcome* outcome);

  /// Pops the *youngest* in-flight round without committing it: waits
  /// for its solves to quiesce (workers may be reading the catalog),
  /// drops the proposals and returns the round's un-departed queries to
  /// the front of the scheduler as one group, so the next dispatch pops
  /// the same round again.
  void UnwindYoungestRound();

  /// The pipeline barrier every handler that mutates worker-read state
  /// in place (measured rates, host specs) must cross first: commits
  /// the oldest round — the barrier event is its pinned commit point —
  /// and unwinds every younger round, youngest first, so the oldest
  /// unwound group ends up frontmost in the scheduler. Committing the
  /// younger rounds instead would let depth change committed state:
  /// they would land *before* the barrier's rate/spec installation,
  /// where depth 1 solves them after it.
  void RetireAllRounds(EventOutcome* outcome);

  // ---- Reuse-index (PlanCache) maintenance. ----
  //
  // Handlers report how their event changed the deployment; the cache
  // is brought up to date once, at the end of Step(). Additive commits
  // and serving-only changes apply as incremental deltas
  // (PlanCache::ApplyDelta, O(delta) instead of the grounded-fixpoint
  // scan); anything that removed operators or flows (departures with GC
  // fallout, evictions, drift cycles) falls back to a full Rebuild —
  // which itself no-ops when the deployment version is unchanged.

  /// Queues a delta for the end-of-event cache update. A delta carrying
  /// op/flow removals escalates to a full rebuild.
  void MarkCacheDelta(const DeploymentDelta& delta);
  /// Queues a pure serving change (cache fast-path admissions,
  /// GC-less departures).
  void MarkCacheServing(StreamId stream, HostId before, HostId after);
  void MarkCacheRebuild() { cache_rebuild_ = true; }
  /// Applies the queued maintenance (end of Step / round retirement).
  void SyncPlanCache();

  /// Admits one query; shared by arrivals and re-planning re-solves.
  /// Tries the plan-cache fast path, then a speculative solve on the
  /// loop thread (WarmCatalog + ProposeAdmission + CommitProposal) that
  /// overlaps any in-flight rounds instead of retiring them. When
  /// `reuse_candidates` is non-null it receives the number of
  /// materialised proper-subquery hits. `overlapped_arrival` feeds the
  /// overlapped_arrival_solves counter — true for genuine arrivals,
  /// false for the commit-path conflict re-solves, which run while
  /// younger rounds are legitimately still in flight.
  Result<PlanningStats> Admit(StreamId query, int* reuse_candidates,
                              bool overlapped_arrival = true);

  /// Wraps SqprPlanner::WarmCatalog: records the first-call order of
  /// warmed queries (the catalog intern log a checkpoint replays to
  /// reproduce StreamId assignment) and counts graceful catalog
  /// exhaustion.
  Status WarmCatalogLogged(StreamId query);

  /// Speculative (wall-dependent) audit record for a solve that
  /// breached its degraded-mode budget: detail 1 = admitted via the
  /// solver's best incumbent, 2 = admitted via the greedy heuristic,
  /// 3 = rejected (retried through the next round once, arrivals only).
  void AuditDeadlineBreach(StreamId query, const PlanningStats& stats) const;

  /// Folds one solve's incremental-path telemetry into the aggregate
  /// counters (loop thread only; worker-side solves are counted when
  /// their proposals commit).
  void CountSolveStats(const PlanningStats& stats);

  void RememberRejected(StreamId query);

  // ---- Decision audit journal (options_.audit; all no-ops when off).
  // Canonical records are emitted at commit points only, so the stream
  // is worker/depth-invariant; anything tied to speculative pipeline
  // state is marked speculative and excluded from canonical rendering
  // (see obs/audit.h). ----

  bool AuditOn() const { return options_.audit != nullptr; }
  /// Builds a record stamped with the virtual time.
  obs::AuditRecord AuditBase(const char* kind) const;
  /// Captures the committed deployment's version/structure/fingerprint
  /// into the record's pre_* (post == false) or post_* fields. Only
  /// called when auditing is on — Fingerprint() is not free.
  void AuditFingerprint(obs::AuditRecord* r, bool post) const;
  void AuditAppend(obs::AuditRecord r) const;
  /// Records one ServiceStats stage sample and checks it against its
  /// watchdog budget (budget 0 = off).
  void SampleStage(obs::Histogram* h, double ms, double budget_ms,
                   int64_t* breaches);

  /// Committed-round sequence for replan.round records: counts rounds
  /// that committed with at least one non-discarded query. Rounds whose
  /// every query departed in flight exist only at depth > 1 (depth 1
  /// discards them in the scheduler before dispatch), so they must not
  /// consume a sequence number.
  int64_t audit_round_seq_ = 0;

  Cluster* cluster_;
  Catalog* catalog_;
  ServiceOptions options_;
  SqprPlanner planner_;
  ResourceMonitor monitor_;
  PlanCache cache_;
  ReplanScheduler scheduler_;
  VirtualClock clock_;
  EventQueue queue_;
  ServiceStats stats_;

  /// Pending reuse-index maintenance, applied once at the end of Step()
  /// rather than after every mutation (intra-event lookups may see a
  /// snapshot from the event's start — safe, because AdmitMaterialized
  /// re-checks groundedness and SubmitQuery's dedup is authoritative).
  bool cache_rebuild_ = false;
  std::vector<DeploymentDelta> cache_deltas_;
  /// Closed-loop telemetry (null in open-loop mode). Loop-thread-owned,
  /// like every other committed-state structure.
  std::unique_ptr<MeasurementEngine> telemetry_;
  /// Ticks consumed since the last self-measurement.
  int ticks_since_measure_ = 0;

  /// Saved specs of failed hosts, restored on rejoin.
  std::map<HostId, HostSpec> failed_hosts_;
  /// Recently rejected queries (FIFO, bounded), retried after joins.
  std::deque<StreamId> rejected_recently_;
  /// First-call order of every query whose catalog closure this service
  /// warmed (WarmCatalogLogged). Interning order decides StreamId
  /// assignment, so a checkpoint restore replays JoinClosure over this
  /// log — in order, onto a catalog rebuilt to its pre-service state —
  /// to reproduce the catalog bit-for-bit.
  std::vector<StreamId> warm_log_;
  std::set<StreamId> warm_logged_;
  /// Queries already granted their one retry after a deadline-breach
  /// rejection. The single-shot guard keeps the degraded mode from
  /// looping a query forever when every solve breaches (the
  /// instantly-expired test budget does exactly that).
  std::set<StreamId> deadline_retried_;

  /// Speculative re-planning pipeline (every worker count), oldest
  /// round at the front; at most ReplanPolicyOptions::pipeline_depth
  /// rounds deep. The pool is declared last so it is destroyed —
  /// joining its threads — before any other member; tasks only capture
  /// the shared_ptrs inside InFlightRound, never `this`.
  std::deque<InFlightRound> inflight_;
  int64_t next_round_id_ = 0;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace sqpr

#endif  // SQPR_SERVICE_PLANNING_SERVICE_H_
