#ifndef SQPR_SERVICE_PLAN_CACHE_H_
#define SQPR_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/catalog.h"
#include "plan/deployment.h"

namespace sqpr {

/// Arrival-time reuse index over the committed deployment (§II-C/§III).
///
/// The SQPR model discovers reuse through the availability constraint
/// (III.5a), but only for streams that enter the MILP. The cache makes
/// the *lookup* side O(log n): it indexes every composite stream that is
/// currently materialised — grounded at some host through committed
/// operators and flows — keyed by its canonical leaf signature. On query
/// arrival the service can then answer, without scanning the catalog or
/// re-deriving availability:
///   * exact hit  — the requested canonical stream is already served
///     (dedup, Algorithm 1 line 3) or materialised but unserved, in
///     which case admission degenerates to adding one client-serving
///     arc (no solve);
///   * partial hit — some proper subquery is materialised, i.e. the
///     MILP has a warm reuse opportunity (surfaced as candidates).
///
/// Maintenance has two tiers:
///   * Rebuild — the from-scratch grounded fixpoint plus a full
///     signature-table scan: O(hosts × catalog streams × chain length).
///     The catalog holds the join closure of every query ever seen, so
///     this scan grows with workload history, not with the deployment.
///     Rebuild() skips the scan entirely when the deployment's
///     *structure* version counter is unchanged since the cache last
///     indexed it (no-op mutating events, repeat-arrival dedup) —
///     deliberately ignoring ledger-only recomputes from rate
///     installs, which cannot change groundedness or serving.
///   * ApplyDelta — incremental maintenance for *additive*
///     DeploymentDelta updates (admission commits, serving changes):
///     groundedness is monotone under additions, so the cache keeps the
///     grounded bitmap and closes over the new operators/flows with a
///     worklist, O(delta × local fan-out). Deltas carrying op/flow
///     removals fall back to Rebuild (un-grounding is not monotone).
class PlanCache {
 public:
  explicit PlanCache(const Catalog* catalog) : catalog_(catalog) {}

  /// A materialised stream and the hosts where it is grounded.
  struct Hit {
    StreamId stream = kInvalidStream;
    std::vector<HostId> hosts;
  };

  /// What the cache knows about an arriving query.
  struct Lookup {
    /// The query stream itself is materialised (hosts in `exact`).
    bool exact = false;
    /// The query is already being served (subset of `exact` situations).
    bool served = false;
    Hit exact_hit;
    /// Materialised proper subqueries (canonical substreams), largest
    /// leaf set first.
    std::vector<Hit> partial;
  };

  /// Reindexes materialised streams from the committed deployment.
  /// Skips the scan (counting a no-op skip) when
  /// `deployment.structure_version()` is unchanged since the last
  /// Rebuild/ApplyDelta — rate installs bump only the full version()
  /// and neither re-arm nor require a scan.
  void Rebuild(const Deployment& deployment);

  /// Applies one additive delta against the (already committed)
  /// `deployment`. Returns true when the update was incremental; falls
  /// back to a full rebuild — returning false — when the delta carries
  /// op/flow removals or the cache has never been built. After either
  /// path the cache equals a from-scratch Rebuild of `deployment`,
  /// provided every deployment change since the last sync is covered by
  /// the deltas applied (the planning service guarantees this).
  bool ApplyDelta(const Deployment& deployment, const DeploymentDelta& delta);

  /// Arrival-time lookup; updates the hit/miss counters. A hit is an
  /// exact match (served or materialised); a partial-only match counts
  /// as a partial hit; neither counts as a miss.
  Lookup OnArrival(StreamId query);

  /// Pure exact-signature probe (no counter updates).
  bool FindMaterialized(StreamId stream, Hit* hit) const;

  int64_t exact_hits() const { return exact_hits_; }
  int64_t partial_hits() const { return partial_hits_; }
  int64_t misses() const { return misses_; }
  /// Total arrivals that found something reusable.
  int64_t hits() const { return exact_hits_ + partial_hits_; }
  int num_indexed() const { return static_cast<int>(by_stream_.size()); }

  /// Maintenance counters: full fixpoint scans, incremental delta
  /// applications, and rebuild requests skipped because the deployment
  /// version had not moved (the repeat-arrival / empty-fallout no-ops).
  int64_t rebuilds() const { return rebuilds_; }
  int64_t delta_updates() const { return delta_updates_; }
  int64_t noop_skips() const { return noop_skips_; }

  /// Checkpoint support (src/service/checkpoint.h): reinstates the
  /// arrival-facing counters after a restore rebuilt the index from the
  /// restored deployment. Only the hit/miss counters round-trip — they
  /// describe the workload. The maintenance counters (rebuilds,
  /// delta_updates, noop_skips) describe *this process's* work and
  /// restart from the rebuild the restore itself performed.
  void RestoreCounters(int64_t exact_hits, int64_t partial_hits,
                       int64_t misses) {
    exact_hits_ = exact_hits;
    partial_hits_ = partial_hits;
    misses_ = misses;
  }

  /// Canonical dump of the index *and* the grounded bitmap — equality
  /// of dumps is the contract between ApplyDelta and Rebuild that the
  /// incremental-maintenance tests check.
  std::string DebugDump() const;

 private:
  void RebuildScan(const Deployment& deployment);
  /// Grows the grounded bitmap to the catalog's current stream count,
  /// seeding newly interned base streams at their source hosts (the
  /// same seeding the fixpoint applies).
  void GrowStride();
  bool Grounded(HostId h, StreamId s) const {
    return s < num_streams_ &&
           grounded_[static_cast<size_t>(h) * num_streams_ + s];
  }
  /// Marks (h, s) grounded, indexes it, and pushes it on the worklist.
  void Ground(HostId h, StreamId s,
              std::vector<std::pair<HostId, StreamId>>* worklist);
  /// Grounds the operator's output at h when all inputs are grounded.
  void TryGroundOperator(HostId h, OperatorId o,
                         std::vector<std::pair<HostId, StreamId>>* worklist);
  /// Adds a materialised composite stream to the signature tables.
  void IndexMaterialized(HostId h, StreamId s);

  const Catalog* catalog_;

  /// Grounded-availability bitmap mirrored from the last sync (row-major
  /// by host, stride num_streams_) — the state ApplyDelta extends.
  int num_hosts_ = 0;
  int num_streams_ = 0;
  std::vector<bool> grounded_;

  /// Materialised composite streams with their grounded host lists
  /// (hosts ascending).
  std::map<StreamId, std::vector<HostId>> by_stream_;
  /// Canonical leaf signature -> materialised stream. Signatures are the
  /// sorted base-leaf sets the catalog hash-conses on, so two join
  /// orders of the same leaves share one entry; when two streams carry
  /// the same signature the smallest id wins (deterministic under both
  /// maintenance tiers).
  std::map<std::vector<StreamId>, StreamId> by_signature_;
  /// Streams currently served (exact dedup hits).
  std::map<StreamId, HostId> served_;

  bool indexed_ = false;
  /// Deployment::structure_version() as of the last sync — ledger
  /// recomputes don't move it, so rate installs can't defeat the no-op
  /// skip.
  uint64_t indexed_version_ = 0;
  /// Identity of the deployment the version above refers to: version
  /// counters are per-object, so a skip is only sound against the same
  /// Deployment the cache last indexed.
  const Deployment* indexed_deployment_ = nullptr;

  int64_t exact_hits_ = 0;
  int64_t partial_hits_ = 0;
  int64_t misses_ = 0;
  int64_t rebuilds_ = 0;
  int64_t delta_updates_ = 0;
  int64_t noop_skips_ = 0;
};

}  // namespace sqpr

#endif  // SQPR_SERVICE_PLAN_CACHE_H_
