#ifndef SQPR_SERVICE_PLAN_CACHE_H_
#define SQPR_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "model/catalog.h"
#include "plan/deployment.h"

namespace sqpr {

/// Arrival-time reuse index over the committed deployment (§II-C/§III).
///
/// The SQPR model discovers reuse through the availability constraint
/// (III.5a), but only for streams that enter the MILP. The cache makes
/// the *lookup* side O(log n): it indexes every composite stream that is
/// currently materialised — grounded at some host through committed
/// operators and flows — keyed by its canonical leaf signature. On query
/// arrival the service can then answer, without scanning the catalog or
/// re-deriving availability:
///   * exact hit  — the requested canonical stream is already served
///     (dedup, Algorithm 1 line 3) or materialised but unserved, in
///     which case admission degenerates to adding one client-serving
///     arc (no solve);
///   * partial hit — some proper subquery is materialised, i.e. the
///     MILP has a warm reuse opportunity (surfaced as candidates).
///
/// The index is rebuilt from the deployment once per mutating event:
/// cost O(hosts × catalog streams) for the grounded fixpoint plus
/// O(placed operators) for the signature table. The *table* stays
/// proportional to the deployment, but the rebuild scan does grow with
/// the catalog (the join closure of every query ever seen) — the
/// ROADMAP's incremental-maintenance item targets exactly that scan.
class PlanCache {
 public:
  explicit PlanCache(const Catalog* catalog) : catalog_(catalog) {}

  /// A materialised stream and the hosts where it is grounded.
  struct Hit {
    StreamId stream = kInvalidStream;
    std::vector<HostId> hosts;
  };

  /// What the cache knows about an arriving query.
  struct Lookup {
    /// The query stream itself is materialised (hosts in `exact`).
    bool exact = false;
    /// The query is already being served (subset of `exact` situations).
    bool served = false;
    Hit exact_hit;
    /// Materialised proper subqueries (canonical substreams), largest
    /// leaf set first.
    std::vector<Hit> partial;
  };

  /// Reindexes materialised streams from the committed deployment.
  void Rebuild(const Deployment& deployment);

  /// Arrival-time lookup; updates the hit/miss counters. A hit is an
  /// exact match (served or materialised); a partial-only match counts
  /// as a partial hit; neither counts as a miss.
  Lookup OnArrival(StreamId query);

  /// Pure exact-signature probe (no counter updates).
  bool FindMaterialized(StreamId stream, Hit* hit) const;

  int64_t exact_hits() const { return exact_hits_; }
  int64_t partial_hits() const { return partial_hits_; }
  int64_t misses() const { return misses_; }
  /// Total arrivals that found something reusable.
  int64_t hits() const { return exact_hits_ + partial_hits_; }
  int num_indexed() const { return static_cast<int>(by_stream_.size()); }

 private:
  const Catalog* catalog_;

  /// Materialised composite streams with their grounded host lists.
  std::map<StreamId, std::vector<HostId>> by_stream_;
  /// Canonical leaf signature -> materialised stream. Signatures are the
  /// sorted base-leaf sets the catalog hash-conses on, so two join
  /// orders of the same leaves share one entry.
  std::map<std::vector<StreamId>, StreamId> by_signature_;
  /// Streams currently served (exact dedup hits).
  std::map<StreamId, HostId> served_;

  int64_t exact_hits_ = 0;
  int64_t partial_hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace sqpr

#endif  // SQPR_SERVICE_PLAN_CACHE_H_
