#include "service/event_loop.h"

#include <utility>

#include "common/logging.h"

namespace sqpr {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kQueryArrival:
      return "arrival";
    case EventKind::kQueryDeparture:
      return "departure";
    case EventKind::kHostJoin:
      return "host-join";
    case EventKind::kHostFailure:
      return "host-failure";
    case EventKind::kMonitorReport:
      return "monitor-report";
    case EventKind::kTick:
      return "tick";
    case EventKind::kRateDirective:
      return "rate-directive";
  }
  return "unknown";
}

Event Event::Arrival(int64_t t, StreamId q) {
  Event e;
  e.time_ms = t;
  e.kind = EventKind::kQueryArrival;
  e.query = q;
  return e;
}

Event Event::Departure(int64_t t, StreamId q) {
  Event e;
  e.time_ms = t;
  e.kind = EventKind::kQueryDeparture;
  e.query = q;
  return e;
}

Event Event::HostJoin(int64_t t, HostId h) {
  Event e;
  e.time_ms = t;
  e.kind = EventKind::kHostJoin;
  e.host = h;
  return e;
}

Event Event::HostFailure(int64_t t, HostId h) {
  Event e;
  e.time_ms = t;
  e.kind = EventKind::kHostFailure;
  e.host = h;
  return e;
}

Event Event::MonitorReport(int64_t t, std::map<StreamId, double> rates,
                           std::vector<double> cpu) {
  Event e;
  e.time_ms = t;
  e.kind = EventKind::kMonitorReport;
  e.measured_base_rates = std::move(rates);
  e.cpu_utilization = std::move(cpu);
  return e;
}

Event Event::Tick(int64_t t) {
  Event e;
  e.time_ms = t;
  e.kind = EventKind::kTick;
  return e;
}

Event Event::RateDirective(int64_t t, RateTrajectory trajectory) {
  Event e;
  e.time_ms = t;
  e.kind = EventKind::kRateDirective;
  e.query = trajectory.stream;
  e.trajectory = std::move(trajectory);
  return e;
}

std::string Event::ToString() const {
  std::string out =
      "t=" + std::to_string(time_ms) + " " + EventKindName(kind);
  switch (kind) {
    case EventKind::kQueryArrival:
    case EventKind::kQueryDeparture:
      out += " query=" + std::to_string(query);
      break;
    case EventKind::kHostJoin:
    case EventKind::kHostFailure:
      out += " host=" + std::to_string(host);
      break;
    case EventKind::kMonitorReport:
      out += " rates=" + std::to_string(measured_base_rates.size());
      break;
    case EventKind::kTick:
      break;
    case EventKind::kRateDirective:
      out += " stream=" + std::to_string(trajectory.stream) + " " +
             RateTrajectoryKindName(trajectory.kind);
      break;
  }
  return out;
}

void EventQueue::Push(Event event) {
  heap_.push(Entry{next_seq_++, std::move(event)});
}

int64_t EventQueue::NextTime() const {
  return heap_.empty() ? kNoEvent : heap_.top().event.time_ms;
}

Event EventQueue::Pop() {
  SQPR_CHECK(!heap_.empty());
  Event event = heap_.top().event;
  heap_.pop();
  return event;
}

}  // namespace sqpr
