#ifndef SQPR_SERVICE_REPLAN_POLICY_H_
#define SQPR_SERVICE_REPLAN_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "model/ids.h"

namespace sqpr {

/// Bounds on the §IV-B/§IV-C adaptive re-planning work the service is
/// willing to do per consumed event. The paper re-plans by removing and
/// re-admitting affected queries; each re-admission is a full reduced
/// MILP solve, so an unbounded drift report (or a failed host carrying
/// many queries) could stall the event loop. The policy batches all
/// pending candidates into *rounds* of at most `max_queries_per_round`
/// solves; exactly one round is in flight at a time, dispatched at the
/// end of one event and committed at the end of the next (or at an
/// earlier barrier), so the remainder stays queued for later events and
/// ticks.
struct ReplanPolicyOptions {
  int max_queries_per_round = 8;
  /// Worker-pool threads solving re-planning rounds off the event-loop
  /// thread. Every worker count — including 0 — runs the same
  /// speculative propose/commit pipeline with the same logical dispatch
  /// and commit points; `workers` only decides *where* the round's
  /// solves run. With 0 they run synchronously on the loop thread at
  /// dispatch; with N >= 1 they run on a pool while the loop keeps
  /// consuming events (arrivals keep admitting — via the plan-cache
  /// fast path *and* via speculative cache-miss solves over the
  /// thread-safe catalog). Proposals commit on the loop thread in FIFO
  /// order either way, so the worker count never changes the committed
  /// deployments — only how much solve time overlaps event processing
  /// (see docs/ARCHITECTURE.md).
  int workers = 0;
  /// Cap the pool at the machine's hardware concurrency (minus nothing —
  /// the loop thread mostly blocks at the barrier while a round solves).
  /// Requesting more CPU-bound solver threads than cores buys no
  /// parallelism, only time-slicing: on a 1-core host, workers=4 made
  /// every in-flight solve ~4x slower wall-clock (the drift-trace p95
  /// blow-up the workers=4 Perfetto trace pinned on `milp/node` spans
  /// stretched by preemption, not on any lock). Deterministic to flip:
  /// the worker count never affects committed deployments, only solve
  /// overlap. Tests that *want* oversubscription (TSan interleaving
  /// coverage) set this to false.
  bool clamp_workers_to_cores = true;
};

/// Deduplicating FIFO of re-planning candidates. Candidates accumulate
/// from monitor drift reports, host-failure fallout and (optionally)
/// rejected-query retries after topology changes; enqueueing an already
/// pending query is a no-op, so a query implicated by several conditions
/// in one period is re-planned once (the §IV-B round semantics).
class ReplanScheduler {
 public:
  explicit ReplanScheduler(ReplanPolicyOptions options)
      : options_(options) {}

  /// Adds a candidate; returns false when it was already pending.
  bool Enqueue(StreamId query);

  /// Drops a pending candidate (e.g. the query departed while waiting).
  void Discard(StreamId query);

  /// Pops up to max_queries_per_round candidates in FIFO order.
  std::vector<StreamId> NextRound();

  bool HasPending() const { return !fifo_.empty(); }
  size_t pending() const { return fifo_.size(); }
  const ReplanPolicyOptions& options() const { return options_; }

 private:
  ReplanPolicyOptions options_;
  std::deque<StreamId> fifo_;
  std::set<StreamId> pending_;
};

}  // namespace sqpr

#endif  // SQPR_SERVICE_REPLAN_POLICY_H_
