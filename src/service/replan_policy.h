#ifndef SQPR_SERVICE_REPLAN_POLICY_H_
#define SQPR_SERVICE_REPLAN_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "model/ids.h"

namespace sqpr {

namespace obs {
class AuditJournal;
}  // namespace obs

class VirtualClock;

/// Bounds on the §IV-B/§IV-C adaptive re-planning work the service is
/// willing to do per consumed event. The paper re-plans by removing and
/// re-admitting affected queries; each re-admission is a full reduced
/// MILP solve, so an unbounded drift report (or a failed host carrying
/// many queries) could stall the event loop. The policy batches all
/// pending candidates into *rounds* of at most `max_queries_per_round`
/// solves; up to `pipeline_depth` rounds are in flight at once, each
/// pinned to commit exactly one event after the previous round (or at an
/// earlier barrier), so the remainder stays queued for later events and
/// ticks.
struct ReplanPolicyOptions {
  int max_queries_per_round = 8;
  /// Worker-pool threads solving re-planning rounds off the event-loop
  /// thread. Every worker count — including 0 — runs the same
  /// speculative propose/commit pipeline with the same logical dispatch
  /// and commit points; `workers` only decides *where* the round's
  /// solves run. With 0 they run synchronously on the loop thread at
  /// dispatch; with N >= 1 they run on a pool while the loop keeps
  /// consuming events (arrivals keep admitting — via the plan-cache
  /// fast path *and* via speculative cache-miss solves over the
  /// thread-safe catalog). Proposals commit on the loop thread in FIFO
  /// order either way, so the worker count never changes the committed
  /// deployments — only how much solve time overlaps event processing
  /// (see docs/ARCHITECTURE.md).
  int workers = 0;
  /// Maximum re-planning rounds in flight at once. Each round pins its
  /// own planner snapshot at dispatch and commits at a fixed logical
  /// point — one round per consumed event, FIFO in dispatch order — so
  /// the depth decides only how early a round's solves *start*, never
  /// where they land: committed deployments are bit-identical across
  /// depths (and worker counts). Rounds beyond the first speculate
  /// against a snapshot that older rounds' commits may invalidate; the
  /// strict structure-version gate then bounces the stale proposal and
  /// the service re-solves it inline, warm-started, at the pinned
  /// commit point (the commit_conflicts counter). Depth 1 reproduces
  /// the old dispatch-then-commit-next-event behaviour exactly.
  int pipeline_depth = 2;
  /// Cap the pool at the machine's hardware concurrency (minus nothing —
  /// the loop thread mostly blocks at the barrier while a round solves).
  /// Requesting more CPU-bound solver threads than cores buys no
  /// parallelism, only time-slicing: on a 1-core host, workers=4 made
  /// every in-flight solve ~4x slower wall-clock (the drift-trace p95
  /// blow-up the workers=4 Perfetto trace pinned on `milp/node` spans
  /// stretched by preemption, not on any lock). Deterministic to flip:
  /// the worker count never affects committed deployments, only solve
  /// overlap. Tests that *want* oversubscription (TSan interleaving
  /// coverage) set this to false.
  bool clamp_workers_to_cores = true;
};

/// Deduplicating FIFO of re-planning candidates. Candidates accumulate
/// from monitor drift reports, host-failure fallout and (optionally)
/// rejected-query retries after topology changes; enqueueing an already
/// pending query is a no-op, so a query implicated by several conditions
/// in one period is re-planned once (the §IV-B round semantics).
///
/// Round composition is pinned at *enqueue* time: candidates are cut
/// into groups of at most max_queries_per_round as they arrive, and a
/// later Discard shrinks its group without re-packing the others. This
/// matters for pipeline-depth invariance — if groups re-packed, a
/// departure hitting a query that depth 2 already dispatched (but depth
/// 1 still has queued) would shift every later round's composition
/// between the two depths. With enqueue-time cutting, both depths see
/// identical rounds minus identically-discarded members.
class ReplanScheduler {
 public:
  explicit ReplanScheduler(ReplanPolicyOptions options)
      : options_(options) {}

  /// Adds a candidate; returns false when it was already pending.
  bool Enqueue(StreamId query);

  /// Drops a pending candidate (e.g. the query departed while waiting).
  void Discard(StreamId query);

  /// Pops the oldest group (up to max_queries_per_round candidates, in
  /// enqueue order).
  std::vector<StreamId> NextRound();

  /// Returns an unwound round's queries to the *front* of the queue, as
  /// one group, preserving their order — used when a barrier retires a
  /// speculative in-flight round before its pinned commit point. The
  /// next NextRound pops exactly this group again, so the post-barrier
  /// schedule is the one a depth-1 service (which never dispatched the
  /// round) would produce. Queries that re-entered the queue meanwhile
  /// are skipped rather than duplicated.
  void Requeue(const std::vector<StreamId>& queries);

  bool HasPending() const { return !pending_.empty(); }
  size_t pending() const { return pending_.size(); }
  const ReplanPolicyOptions& options() const { return options_; }

  /// Pending candidates in FIFO order (group by group) — the backlog
  /// the audit journal's close.pending record carries.
  std::vector<StreamId> PendingQueries() const;

  /// Checkpoint support (src/service/checkpoint.h). Round composition is
  /// pinned at enqueue time, so a faithful restore must preserve the
  /// *group boundaries*, not just the flat candidate order — otherwise a
  /// restored service would re-cut the backlog into different rounds
  /// than the uninterrupted run. Empty groups (fully Discarded) are
  /// dropped on export; they are unobservable, NextRound skips them.
  std::vector<std::vector<StreamId>> ExportGroups() const;

  /// Replaces the backlog with `groups`, rebuilding the pending set.
  /// No audit records are emitted: the enqueues were already audited in
  /// the run that produced the checkpoint.
  void ImportGroups(const std::vector<std::vector<StreamId>>& groups);

  /// Attaches a decision audit journal (null detaches). Genuine
  /// enqueues happen at barrier-retired points, so replan.enqueue
  /// records are canonical (worker/depth-invariant); requeues and
  /// discards depend on what was speculatively in flight, so theirs are
  /// marked speculative. `clock` supplies the virtual time
  /// (loop-thread-owned, like the scheduler itself).
  void set_audit(obs::AuditJournal* audit, const VirtualClock* clock) {
    audit_ = audit;
    audit_clock_ = clock;
  }

 private:
  void Audit(const char* kind, StreamId query, bool speculative) const;

  ReplanPolicyOptions options_;
  obs::AuditJournal* audit_ = nullptr;
  const VirtualClock* audit_clock_ = nullptr;
  /// Groups in FIFO order; each inner deque is one future round, in
  /// enqueue order. Discard may leave a group empty — NextRound skips
  /// empty groups rather than merging neighbours.
  std::deque<std::deque<StreamId>> groups_;
  std::set<StreamId> pending_;
};

}  // namespace sqpr

#endif  // SQPR_SERVICE_REPLAN_POLICY_H_
