#include "service/plan_cache.h"

#include <algorithm>

namespace sqpr {

void PlanCache::Rebuild(const Deployment& deployment) {
  if (indexed_ && &deployment == indexed_deployment_ &&
      deployment.structure_version() == indexed_version_) {
    // No flow/placement/serving moved since the cache last indexed
    // this deployment (ledger recomputes don't affect groundedness) —
    // repeat-arrival dedup, empty failure fallout and friends request
    // rebuilds without having changed anything. Skip the scan.
    ++noop_skips_;
    return;
  }
  RebuildScan(deployment);
}

void PlanCache::RebuildScan(const Deployment& deployment) {
  by_stream_.clear();
  by_signature_.clear();
  served_.clear();

  const GroundedMap grounded = deployment.GroundedAvailability();
  num_hosts_ = grounded.num_hosts;
  num_streams_ = grounded.num_streams;
  grounded_ = grounded.bits;

  // Only streams actually produced or carried by committed state can be
  // grounded somewhere, so the signature table stays proportional to the
  // deployment, not the catalog.
  for (StreamId s = 0; s < grounded.num_streams; ++s) {
    const StreamInfo& info = catalog_->stream(s);
    if (info.is_base) continue;  // base reuse is just the injection host
    std::vector<HostId> hosts;
    for (HostId h = 0; h < grounded.num_hosts; ++h) {
      if (grounded.at(h, s)) {
        hosts.push_back(h);
      }
    }
    if (hosts.empty()) continue;
    auto [it, inserted] = by_signature_.emplace(info.leaves, s);
    if (!inserted) it->second = std::min(it->second, s);
    by_stream_.emplace(s, std::move(hosts));
  }

  for (StreamId s : deployment.ServedStreams()) {
    served_[s] = deployment.ServingHost(s);
  }

  indexed_ = true;
  indexed_version_ = deployment.structure_version();
  indexed_deployment_ = &deployment;
  ++rebuilds_;
}

void PlanCache::GrowStride() {
  const int streams_now = catalog_->num_streams();
  if (streams_now <= num_streams_) return;
  std::vector<bool> grown(static_cast<size_t>(num_hosts_) * streams_now,
                          false);
  for (HostId h = 0; h < num_hosts_; ++h) {
    for (StreamId s = 0; s < num_streams_; ++s) {
      if (grounded_[static_cast<size_t>(h) * num_streams_ + s]) {
        grown[static_cast<size_t>(h) * streams_now + s] = true;
      }
    }
  }
  // Newly interned base streams are grounded at their source hosts —
  // the same seeding the from-scratch fixpoint applies. (New composite
  // streams start ungrounded until an operator or flow grounds them.)
  for (StreamId s = num_streams_; s < streams_now; ++s) {
    const StreamInfo& info = catalog_->stream(s);
    if (info.is_base && info.source_host != kInvalidHost &&
        info.source_host < num_hosts_) {
      grown[static_cast<size_t>(info.source_host) * streams_now + s] = true;
    }
  }
  grounded_ = std::move(grown);
  num_streams_ = streams_now;
}

void PlanCache::IndexMaterialized(HostId h, StreamId s) {
  const StreamInfo& info = catalog_->stream(s);
  if (info.is_base) return;
  std::vector<HostId>& hosts = by_stream_[s];
  auto pos = std::lower_bound(hosts.begin(), hosts.end(), h);
  if (pos == hosts.end() || *pos != h) hosts.insert(pos, h);
  auto [it, inserted] = by_signature_.emplace(info.leaves, s);
  if (!inserted) it->second = std::min(it->second, s);
}

void PlanCache::Ground(HostId h, StreamId s,
                       std::vector<std::pair<HostId, StreamId>>* worklist) {
  grounded_[static_cast<size_t>(h) * num_streams_ + s] = true;
  IndexMaterialized(h, s);
  worklist->emplace_back(h, s);
}

void PlanCache::TryGroundOperator(
    HostId h, OperatorId o,
    std::vector<std::pair<HostId, StreamId>>* worklist) {
  const OperatorInfo& op = catalog_->op(o);
  if (Grounded(h, op.output)) return;
  for (StreamId in : op.inputs) {
    if (!Grounded(h, in)) return;
  }
  Ground(h, op.output, worklist);
}

bool PlanCache::ApplyDelta(const Deployment& deployment,
                           const DeploymentDelta& delta) {
  if (!indexed_ || !delta.ops_removed.empty() ||
      !delta.flows_removed.empty()) {
    // Un-grounding is not monotone — removals fall back to the full
    // fixpoint. (The service routes removals here only via the rebuild
    // flag, so this is a safety net, not the usual path.)
    RebuildScan(deployment);
    return false;
  }

  GrowStride();

  for (const DeploymentDelta::ServingChange& change : delta.serving_changes) {
    if (change.after == kInvalidHost) {
      served_.erase(change.stream);
    } else {
      served_[change.stream] = change.after;
    }
  }

  // Monotone closure over the additions: each newly grounded (host,
  // stream) re-examines the operators and flows that consume it. The
  // worklist is seeded with the delta's placements and flows; the
  // result is the same least fixpoint RebuildScan computes from
  // scratch, reached in O(delta × local fan-out) instead of
  // O(hosts × catalog streams).
  std::vector<std::pair<HostId, StreamId>> worklist;
  for (const auto& [h, o] : delta.ops_added) {
    TryGroundOperator(h, o, &worklist);
  }
  for (const auto& [from, to, s] : delta.flows_added) {
    if (Grounded(from, s) && !Grounded(to, s)) {
      Ground(to, s, &worklist);
    }
  }
  while (!worklist.empty()) {
    const auto [h, s] = worklist.back();
    worklist.pop_back();
    for (OperatorId o : deployment.OperatorsOn(h)) {
      const OperatorInfo& op = catalog_->op(o);
      if (std::find(op.inputs.begin(), op.inputs.end(), s) !=
          op.inputs.end()) {
        TryGroundOperator(h, o, &worklist);
      }
    }
    for (const auto& [from, to] : deployment.FlowsOf(s)) {
      if (from == h && !Grounded(to, s)) {
        Ground(to, s, &worklist);
      }
    }
  }

  indexed_version_ = deployment.structure_version();
  indexed_deployment_ = &deployment;
  ++delta_updates_;
  return true;
}

std::string PlanCache::DebugDump() const {
  std::string out;
  for (const auto& [s, hosts] : by_stream_) {
    out += "mat " + std::to_string(s) + ":";
    for (HostId h : hosts) out += " " + std::to_string(h);
    out += "\n";
  }
  for (const auto& [sig, s] : by_signature_) {
    out += "sig";
    for (StreamId leaf : sig) out += " " + std::to_string(leaf);
    out += " -> " + std::to_string(s) + "\n";
  }
  for (const auto& [s, h] : served_) {
    out += "served " + std::to_string(s) + "@" + std::to_string(h) + "\n";
  }
  for (HostId h = 0; h < num_hosts_; ++h) {
    for (StreamId s = 0; s < num_streams_; ++s) {
      if (grounded_[static_cast<size_t>(h) * num_streams_ + s]) {
        out += "g " + std::to_string(h) + ":" + std::to_string(s) + "\n";
      }
    }
  }
  return out;
}

bool PlanCache::FindMaterialized(StreamId stream, Hit* hit) const {
  auto it = by_stream_.find(stream);
  if (it == by_stream_.end()) return false;
  if (hit != nullptr) {
    hit->stream = stream;
    hit->hosts = it->second;
  }
  return true;
}

namespace {

/// Enumerates the proper subsets of `leaves` with >= 2 elements, largest
/// cardinality first, invoking `fn(subset)`. Arities in the evaluation
/// workloads are small (<= 12 enforced by the trace tools), so the 2^k
/// enumeration stays tiny; each subset costs one map lookup.
template <typename Fn>
void ForEachProperSubset(const std::vector<StreamId>& leaves, Fn fn) {
  const int k = static_cast<int>(leaves.size());
  if (k > 16) return;  // defensive: skip enumeration for absurd arities
  std::vector<uint32_t> masks;
  masks.reserve((1u << k) - 2);
  for (uint32_t mask = 1; mask + 1 < (1u << k); ++mask) {
    if (__builtin_popcount(mask) >= 2) masks.push_back(mask);
  }
  std::stable_sort(masks.begin(), masks.end(),
                   [](uint32_t a, uint32_t b) {
                     return __builtin_popcount(a) > __builtin_popcount(b);
                   });
  std::vector<StreamId> subset;
  for (uint32_t mask : masks) {
    subset.clear();
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) subset.push_back(leaves[i]);
    }
    fn(subset);
  }
}

}  // namespace

PlanCache::Lookup PlanCache::OnArrival(StreamId query) {
  Lookup result;

  auto served_it = served_.find(query);
  if (served_it != served_.end()) {
    result.exact = true;
    result.served = true;
    result.exact_hit.stream = query;
    result.exact_hit.hosts = {served_it->second};
  } else if (FindMaterialized(query, &result.exact_hit)) {
    result.exact = true;
  }

  // Canonical subquery probes: the leaf vector of every subset is already
  // sorted (subsequence of the query's sorted leaves), i.e. exactly the
  // signature the catalog interned.
  const StreamInfo& info = catalog_->stream(query);
  if (!info.is_base) {
    ForEachProperSubset(info.leaves, [&](const std::vector<StreamId>& sig) {
      auto it = by_signature_.find(sig);
      if (it == by_signature_.end()) return;
      Hit hit;
      if (FindMaterialized(it->second, &hit)) {
        result.partial.push_back(std::move(hit));
      }
    });
  }

  if (result.exact) {
    ++exact_hits_;
  } else if (!result.partial.empty()) {
    ++partial_hits_;
  } else {
    ++misses_;
  }
  return result;
}

}  // namespace sqpr
