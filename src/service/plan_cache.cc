#include "service/plan_cache.h"

#include <algorithm>

namespace sqpr {

void PlanCache::Rebuild(const Deployment& deployment) {
  by_stream_.clear();
  by_signature_.clear();
  served_.clear();

  const GroundedMap grounded = deployment.GroundedAvailability();

  // Only streams actually produced or carried by committed state can be
  // grounded somewhere, so the signature table stays proportional to the
  // deployment, not the catalog.
  for (StreamId s = 0; s < grounded.num_streams; ++s) {
    const StreamInfo& info = catalog_->stream(s);
    if (info.is_base) continue;  // base reuse is just the injection host
    std::vector<HostId> hosts;
    for (HostId h = 0; h < grounded.num_hosts; ++h) {
      if (grounded.at(h, s)) {
        hosts.push_back(h);
      }
    }
    if (hosts.empty()) continue;
    by_signature_[info.leaves] = s;
    by_stream_.emplace(s, std::move(hosts));
  }

  for (StreamId s : deployment.ServedStreams()) {
    served_[s] = deployment.ServingHost(s);
  }
}

bool PlanCache::FindMaterialized(StreamId stream, Hit* hit) const {
  auto it = by_stream_.find(stream);
  if (it == by_stream_.end()) return false;
  if (hit != nullptr) {
    hit->stream = stream;
    hit->hosts = it->second;
  }
  return true;
}

namespace {

/// Enumerates the proper subsets of `leaves` with >= 2 elements, largest
/// cardinality first, invoking `fn(subset)`. Arities in the evaluation
/// workloads are small (<= 12 enforced by the trace tools), so the 2^k
/// enumeration stays tiny; each subset costs one map lookup.
template <typename Fn>
void ForEachProperSubset(const std::vector<StreamId>& leaves, Fn fn) {
  const int k = static_cast<int>(leaves.size());
  if (k > 16) return;  // defensive: skip enumeration for absurd arities
  std::vector<uint32_t> masks;
  masks.reserve((1u << k) - 2);
  for (uint32_t mask = 1; mask + 1 < (1u << k); ++mask) {
    if (__builtin_popcount(mask) >= 2) masks.push_back(mask);
  }
  std::stable_sort(masks.begin(), masks.end(),
                   [](uint32_t a, uint32_t b) {
                     return __builtin_popcount(a) > __builtin_popcount(b);
                   });
  std::vector<StreamId> subset;
  for (uint32_t mask : masks) {
    subset.clear();
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) subset.push_back(leaves[i]);
    }
    fn(subset);
  }
}

}  // namespace

PlanCache::Lookup PlanCache::OnArrival(StreamId query) {
  Lookup result;

  auto served_it = served_.find(query);
  if (served_it != served_.end()) {
    result.exact = true;
    result.served = true;
    result.exact_hit.stream = query;
    result.exact_hit.hosts = {served_it->second};
  } else if (FindMaterialized(query, &result.exact_hit)) {
    result.exact = true;
  }

  // Canonical subquery probes: the leaf vector of every subset is already
  // sorted (subsequence of the query's sorted leaves), i.e. exactly the
  // signature the catalog interned.
  const StreamInfo& info = catalog_->stream(query);
  if (!info.is_base) {
    ForEachProperSubset(info.leaves, [&](const std::vector<StreamId>& sig) {
      auto it = by_signature_.find(sig);
      if (it == by_signature_.end()) return;
      Hit hit;
      if (FindMaterialized(it->second, &hit)) {
        result.partial.push_back(std::move(hit));
      }
    });
  }

  if (result.exact) {
    ++exact_hits_;
  } else if (!result.partial.empty()) {
    ++partial_hits_;
  } else {
    ++misses_;
  }
  return result;
}

}  // namespace sqpr
