#include "service/replan_policy.h"

#include <algorithm>

#include "obs/audit.h"
#include "service/event_loop.h"

namespace sqpr {

void ReplanScheduler::Audit(const char* kind, StreamId query,
                            bool speculative) const {
  if (audit_ == nullptr) return;
  obs::AuditRecord r;
  r.t_ms = audit_clock_ != nullptr ? audit_clock_->now_ms() : 0;
  r.kind = kind;
  r.query = query;
  r.speculative = speculative;
  audit_->Append(std::move(r));
}

bool ReplanScheduler::Enqueue(StreamId query) {
  if (!pending_.insert(query).second) return false;
  const size_t limit =
      static_cast<size_t>(std::max(1, options_.max_queries_per_round));
  if (groups_.empty() || groups_.back().size() >= limit) {
    groups_.emplace_back();
  }
  groups_.back().push_back(query);
  // Canonical: enqueues come from barrier handlers (failure/drift
  // evictions, join retries), which retire the speculative pipeline
  // first — the pending set at that point is worker/depth-invariant.
  Audit("replan.enqueue", query, /*speculative=*/false);
  return true;
}

void ReplanScheduler::Discard(StreamId query) {
  if (pending_.erase(query) == 0) return;
  // Speculative: whether the departed query still sits here (vs already
  // dispatched into an in-flight round) depends on the pipeline depth.
  Audit("replan.discard", query, /*speculative=*/true);
  // Remove from its group without re-packing: round boundaries were
  // fixed at enqueue time and must survive discards (see header).
  for (auto group = groups_.begin(); group != groups_.end(); ++group) {
    auto it = std::find(group->begin(), group->end(), query);
    if (it == group->end()) continue;
    group->erase(it);
    if (group->empty()) groups_.erase(group);
    return;
  }
}

std::vector<StreamId> ReplanScheduler::NextRound() {
  std::vector<StreamId> round;
  if (groups_.empty()) return round;
  round.assign(groups_.front().begin(), groups_.front().end());
  groups_.pop_front();
  for (StreamId q : round) pending_.erase(q);
  return round;
}

void ReplanScheduler::Requeue(const std::vector<StreamId>& queries) {
  std::deque<StreamId> group;
  for (StreamId q : queries) {
    // A query can already be pending again (e.g. a drift report fired
    // between dispatch and unwind); keep the newer position.
    if (!pending_.insert(q).second) continue;
    // Speculative by construction: requeues only exist because a round
    // was dispatched early (depth > 1) and then unwound.
    Audit("replan.requeue", q, /*speculative=*/true);
    group.push_back(q);
  }
  if (!group.empty()) groups_.push_front(std::move(group));
}

std::vector<std::vector<StreamId>> ReplanScheduler::ExportGroups() const {
  std::vector<std::vector<StreamId>> out;
  out.reserve(groups_.size());
  for (const auto& group : groups_) {
    if (group.empty()) continue;
    out.emplace_back(group.begin(), group.end());
  }
  return out;
}

void ReplanScheduler::ImportGroups(
    const std::vector<std::vector<StreamId>>& groups) {
  groups_.clear();
  pending_.clear();
  for (const auto& group : groups) {
    std::deque<StreamId> restored;
    for (StreamId q : group) {
      if (!pending_.insert(q).second) continue;
      restored.push_back(q);
    }
    if (!restored.empty()) groups_.push_back(std::move(restored));
  }
}

std::vector<StreamId> ReplanScheduler::PendingQueries() const {
  std::vector<StreamId> out;
  out.reserve(pending_.size());
  for (const auto& group : groups_) {
    out.insert(out.end(), group.begin(), group.end());
  }
  return out;
}

}  // namespace sqpr
