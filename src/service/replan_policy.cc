#include "service/replan_policy.h"

#include <algorithm>

namespace sqpr {

bool ReplanScheduler::Enqueue(StreamId query) {
  if (!pending_.insert(query).second) return false;
  const size_t limit =
      static_cast<size_t>(std::max(1, options_.max_queries_per_round));
  if (groups_.empty() || groups_.back().size() >= limit) {
    groups_.emplace_back();
  }
  groups_.back().push_back(query);
  return true;
}

void ReplanScheduler::Discard(StreamId query) {
  if (pending_.erase(query) == 0) return;
  // Remove from its group without re-packing: round boundaries were
  // fixed at enqueue time and must survive discards (see header).
  for (auto group = groups_.begin(); group != groups_.end(); ++group) {
    auto it = std::find(group->begin(), group->end(), query);
    if (it == group->end()) continue;
    group->erase(it);
    if (group->empty()) groups_.erase(group);
    return;
  }
}

std::vector<StreamId> ReplanScheduler::NextRound() {
  std::vector<StreamId> round;
  if (groups_.empty()) return round;
  round.assign(groups_.front().begin(), groups_.front().end());
  groups_.pop_front();
  for (StreamId q : round) pending_.erase(q);
  return round;
}

void ReplanScheduler::Requeue(const std::vector<StreamId>& queries) {
  std::deque<StreamId> group;
  for (StreamId q : queries) {
    // A query can already be pending again (e.g. a drift report fired
    // between dispatch and unwind); keep the newer position.
    if (!pending_.insert(q).second) continue;
    group.push_back(q);
  }
  if (!group.empty()) groups_.push_front(std::move(group));
}

}  // namespace sqpr
