#include "service/replan_policy.h"

#include <algorithm>

namespace sqpr {

bool ReplanScheduler::Enqueue(StreamId query) {
  if (!pending_.insert(query).second) return false;
  fifo_.push_back(query);
  return true;
}

void ReplanScheduler::Discard(StreamId query) {
  if (pending_.erase(query) == 0) return;
  fifo_.erase(std::find(fifo_.begin(), fifo_.end(), query));
}

std::vector<StreamId> ReplanScheduler::NextRound() {
  std::vector<StreamId> round;
  const int limit = std::max(1, options_.max_queries_per_round);
  while (!fifo_.empty() && static_cast<int>(round.size()) < limit) {
    const StreamId q = fifo_.front();
    fifo_.pop_front();
    pending_.erase(q);
    round.push_back(q);
  }
  return round;
}

}  // namespace sqpr
