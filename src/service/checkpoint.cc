#include "service/checkpoint.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/json.h"
#include "service/planning_service.h"

namespace sqpr {

// ---------------------------------------------------------------------------
// Atomic file I/O.
// ---------------------------------------------------------------------------

Status WriteFileAtomic(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open \"" + tmp +
                            "\": " + std::strerror(errno));
  }
  // The write is split around the "checkpoint-write" crash point so an
  // armed fault dies with a genuinely torn temp file flushed to disk —
  // the state the rename protocol must keep unobservable under the
  // real name. Unarmed, the split is a free fflush.
  const size_t half = contents.size() / 2;
  bool ok = half == 0 || std::fwrite(contents.data(), 1, half, f) == half;
  if (ok) {
    std::fflush(f);
    fault::MaybeCrash("checkpoint-write");
    const size_t rest = contents.size() - half;
    ok = rest == 0 || std::fwrite(contents.data() + half, 1, rest, f) == rest;
  }
  if (ok) ok = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to \"" + tmp + "\"");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string err = std::strerror(errno);
    std::remove(tmp.c_str());
    return Status::Internal("rename \"" + tmp + "\" -> \"" + path +
                            "\": " + err);
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open \"" + path +
                            "\": " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::Internal("read of \"" + path + "\" failed");
  return out;
}

// ---------------------------------------------------------------------------
// Schema helpers.
// ---------------------------------------------------------------------------

namespace {

/// ServiceStats members a checkpoint carries: exactly the counters the
/// replay property suite ties across worker counts and pipeline depths.
/// Depth/worker-variant counters (dispatches, conflicts, unwinds,
/// snapshot and model telemetry) and wall-clock observations (histograms,
/// watchdog breaches, deadline counters) deliberately restart at zero —
/// serializing them would make the checkpoint bytes depend on the very
/// knobs the determinism contract quantifies over.
struct StatField {
  const char* name;
  int64_t ServiceStats::*member;
};

constexpr StatField kStatFields[] = {
    {"events", &ServiceStats::events},
    {"arrivals", &ServiceStats::arrivals},
    {"admitted", &ServiceStats::admitted},
    {"rejected", &ServiceStats::rejected},
    {"dedup_hits", &ServiceStats::dedup_hits},
    {"cache_fast_path", &ServiceStats::cache_fast_path},
    {"departures", &ServiceStats::departures},
    {"host_failures", &ServiceStats::host_failures},
    {"host_joins", &ServiceStats::host_joins},
    {"monitor_reports", &ServiceStats::monitor_reports},
    {"ticks", &ServiceStats::ticks},
    {"rate_directives", &ServiceStats::rate_directives},
    {"measurement_ticks", &ServiceStats::measurement_ticks},
    {"auto_replan_rounds", &ServiceStats::auto_replan_rounds},
    {"analytic_ticks", &ServiceStats::analytic_ticks},
    {"cache_delta_updates", &ServiceStats::cache_delta_updates},
    {"evictions", &ServiceStats::evictions},
    {"replan_rounds", &ServiceStats::replan_rounds},
    {"replanned_admitted", &ServiceStats::replanned_admitted},
    {"replanned_rejected", &ServiceStats::replanned_rejected},
    {"catalog_exhausted", &ServiceStats::catalog_exhausted},
};

Status BadField(const std::string& field, const char* expected) {
  return Status::InvalidArgument("checkpoint field \"" + field +
                                 "\" is missing or not " + expected);
}

/// Doubles that can be non-finite (HostSpec::mem_mb defaults to +inf)
/// are encoded as the strings "inf"/"-inf"/"nan"; finite values go
/// through the writer's shortest-round-trip rendering, so every bit
/// pattern survives the JSON round trip.
JsonValue EncodeDouble(double d) {
  if (std::isfinite(d)) return JsonValue::Double(d);
  if (std::isnan(d)) return JsonValue::Str("nan");
  return JsonValue::Str(d > 0 ? "inf" : "-inf");
}

Status DecodeDouble(const JsonValue* v, const std::string& field,
                    double* out) {
  if (v != nullptr && v->is_number()) {
    *out = v->AsDouble();
    return Status::OK();
  }
  if (v != nullptr && v->is_string()) {
    const std::string& s = v->string_value();
    if (s == "inf") {
      *out = std::numeric_limits<double>::infinity();
      return Status::OK();
    }
    if (s == "-inf") {
      *out = -std::numeric_limits<double>::infinity();
      return Status::OK();
    }
    if (s == "nan") {
      *out = std::numeric_limits<double>::quiet_NaN();
      return Status::OK();
    }
  }
  return BadField(field, "a number");
}

Status GetInt(const JsonValue& obj, const std::string& field, int64_t* out) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->is_int()) return BadField(field, "an integer");
  *out = v->int_value();
  return Status::OK();
}

Status GetDouble(const JsonValue& obj, const std::string& field,
                 double* out) {
  return DecodeDouble(obj.Find(field), field, out);
}

Status GetString(const JsonValue& obj, const std::string& field,
                 std::string* out) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->is_string()) return BadField(field, "a string");
  *out = v->string_value();
  return Status::OK();
}

Result<const JsonValue*> GetArray(const JsonValue& obj,
                                  const std::string& field) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->is_array()) return BadField(field, "an array");
  return v;
}

Result<const JsonValue*> GetObject(const JsonValue& obj,
                                   const std::string& field) {
  const JsonValue* v = obj.Find(field);
  if (v == nullptr || !v->is_object()) return BadField(field, "an object");
  return v;
}

/// RNG words round-trip as decimal strings: the JSON integer type is
/// int64 and xoshiro state uses the full uint64 range.
JsonValue EncodeU64(uint64_t v) { return JsonValue::Str(std::to_string(v)); }

Status DecodeU64(const JsonValue& v, const std::string& field,
                 uint64_t* out) {
  if (!v.is_string()) return BadField(field, "a decimal string");
  const std::string& s = v.string_value();
  if (s.empty() || s[0] < '0' || s[0] > '9') {
    return BadField(field, "a decimal string");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return BadField(field, "a decimal string");
  }
  *out = parsed;
  return Status::OK();
}

template <typename Container>
JsonValue EncodeIds(const Container& ids) {
  JsonValue arr = JsonValue::Array();
  for (const auto id : ids) arr.Append(JsonValue::Int(id));
  return arr;
}

/// Decodes an id array, rejecting anything outside [0, bound) — the
/// mutators these ids are replayed through index vectors, so a corrupted
/// id must fail here, not underflow a container.
Status DecodeIds(const JsonValue& arr, const std::string& field,
                 int64_t bound, std::vector<int32_t>* out) {
  out->clear();
  out->reserve(arr.items().size());
  for (const JsonValue& item : arr.items()) {
    if (!item.is_int() || item.int_value() < 0 || item.int_value() >= bound) {
      return Status::InvalidArgument("checkpoint field \"" + field +
                                     "\" holds an out-of-range id");
    }
    out->push_back(static_cast<int32_t>(item.int_value()));
  }
  return Status::OK();
}

Status GetIds(const JsonValue& obj, const std::string& field, int64_t bound,
              std::vector<int32_t>* out) {
  Result<const JsonValue*> arr = GetArray(obj, field);
  if (!arr.ok()) return arr.status();
  return DecodeIds(**arr, field, bound, out);
}

JsonValue EncodeTrajectory(const RateTrajectory& t, int64_t install_ms) {
  JsonValue v = JsonValue::Object();
  v.Set("kind", JsonValue::Int(static_cast<int64_t>(t.kind)));
  v.Set("stream", JsonValue::Int(t.stream));
  v.Set("base_rate_mbps", EncodeDouble(t.base_rate_mbps));
  v.Set("step_at_ms", JsonValue::Int(t.step_at_ms));
  v.Set("step_factor", EncodeDouble(t.step_factor));
  v.Set("period_ms", JsonValue::Int(t.period_ms));
  v.Set("volatility", EncodeDouble(t.volatility));
  v.Set("min_factor", EncodeDouble(t.min_factor));
  v.Set("max_factor", EncodeDouble(t.max_factor));
  v.Set("amplitude", EncodeDouble(t.amplitude));
  v.Set("phase", EncodeDouble(t.phase));
  v.Set("install_ms", JsonValue::Int(install_ms));
  return v;
}

Status DecodeTrajectory(const JsonValue& v, RateTrajectory* t,
                        int64_t* install_ms) {
  if (!v.is_object()) return BadField("trajectories[]", "an object");
  int64_t kind = 0;
  SQPR_RETURN_IF_ERROR(GetInt(v, "kind", &kind));
  if (kind < 0 || kind > static_cast<int64_t>(RateTrajectory::Kind::kPeriodic)) {
    return BadField("kind", "a trajectory kind");
  }
  t->kind = static_cast<RateTrajectory::Kind>(kind);
  int64_t stream = 0;
  SQPR_RETURN_IF_ERROR(GetInt(v, "stream", &stream));
  t->stream = static_cast<StreamId>(stream);
  SQPR_RETURN_IF_ERROR(GetDouble(v, "base_rate_mbps", &t->base_rate_mbps));
  SQPR_RETURN_IF_ERROR(GetInt(v, "step_at_ms", &t->step_at_ms));
  SQPR_RETURN_IF_ERROR(GetDouble(v, "step_factor", &t->step_factor));
  SQPR_RETURN_IF_ERROR(GetInt(v, "period_ms", &t->period_ms));
  SQPR_RETURN_IF_ERROR(GetDouble(v, "volatility", &t->volatility));
  SQPR_RETURN_IF_ERROR(GetDouble(v, "min_factor", &t->min_factor));
  SQPR_RETURN_IF_ERROR(GetDouble(v, "max_factor", &t->max_factor));
  SQPR_RETURN_IF_ERROR(GetDouble(v, "amplitude", &t->amplitude));
  SQPR_RETURN_IF_ERROR(GetDouble(v, "phase", &t->phase));
  return GetInt(v, "install_ms", install_ms);
}

}  // namespace

// ---------------------------------------------------------------------------
// Export.
// ---------------------------------------------------------------------------

Result<std::string> PlanningService::ExportCheckpoint() {
  // A checkpoint is a pipeline barrier: retire in-flight rounds exactly
  // as a monitor report would, bring the reuse index up to date and
  // canonicalize the deployment's ledger floats (RecomputeAggregates
  // rebuilds them from the catalog in one fixed order, erasing any
  // history-dependent summation error). Both sides of the crash-restore
  // property checkpoint at the same event boundaries, so the quiesce
  // steps — and therefore the serialized bytes and everything downstream
  // — are identical for the crashing and the uninterrupted run.
  FinishInFlightRound();
  SyncPlanCache();
  planner_.RefreshAccounting();

  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::Str(kCheckpointSchema));
  root.Set("now_ms", JsonValue::Int(clock_.now_ms()));
  root.Set("ticks_since_measure", JsonValue::Int(ticks_since_measure_));
  root.Set("next_round_id", JsonValue::Int(next_round_id_));
  root.Set("audit_round_seq", JsonValue::Int(audit_round_seq_));

  JsonValue stats = JsonValue::Object();
  for (const StatField& f : kStatFields) {
    stats.Set(f.name, JsonValue::Int(stats_.*f.member));
  }
  root.Set("stats", stats);

  root.Set("warm_log", EncodeIds(warm_log_));
  root.Set("deadline_retried", EncodeIds(deadline_retried_));
  root.Set("rejected_recently", EncodeIds(rejected_recently_));

  // Every base stream's current rate estimate. The restore path only
  // replays the ones that differ from the rebuilt catalog's values, so
  // the rate_epoch advances once per drifted stream, not per stream.
  JsonValue rates = JsonValue::Array();
  for (StreamId s = 0; s < catalog_->num_streams(); ++s) {
    const StreamInfo& info = catalog_->stream(s);
    if (!info.is_base) continue;
    JsonValue pair = JsonValue::Array();
    pair.Append(JsonValue::Int(s));
    pair.Append(EncodeDouble(info.rate_mbps));
    rates.Append(pair);
  }
  root.Set("base_rates", rates);

  JsonValue failed = JsonValue::Array();
  for (const auto& [h, spec] : failed_hosts_) {
    JsonValue v = JsonValue::Object();
    v.Set("host", JsonValue::Int(h));
    v.Set("cpu", EncodeDouble(spec.cpu));
    v.Set("nic_out_mbps", EncodeDouble(spec.nic_out_mbps));
    v.Set("nic_in_mbps", EncodeDouble(spec.nic_in_mbps));
    v.Set("mem_mb", EncodeDouble(spec.mem_mb));
    v.Set("name", JsonValue::Str(spec.name));
    failed.Append(v);
  }
  root.Set("failed_hosts", failed);

  // Committed deployment structure, in replayable order: operator
  // placements and serving arcs enumerate canonically (hosts/streams
  // ascending); flows keep each stream's insertion order, which the
  // restore replays verbatim so the rebuilt flow lists — and hence any
  // later journal/snapshot overlay — are bit-identical.
  const Deployment& dep = planner_.deployment();
  JsonValue d = JsonValue::Object();
  d.Set("version", JsonValue::Int(static_cast<int64_t>(dep.version())));
  d.Set("structure_version",
        JsonValue::Int(static_cast<int64_t>(dep.structure_version())));
  JsonValue ops = JsonValue::Array();
  for (HostId h = 0; h < cluster_->num_hosts(); ++h) {
    const std::set<OperatorId>& on = dep.OperatorsOn(h);
    if (on.empty()) continue;
    JsonValue entry = JsonValue::Array();
    entry.Append(JsonValue::Int(h));
    entry.Append(EncodeIds(on));
    ops.Append(entry);
  }
  d.Set("operators", ops);
  JsonValue flows = JsonValue::Array();
  for (StreamId s : dep.FlowStreams()) {
    JsonValue entry = JsonValue::Array();
    entry.Append(JsonValue::Int(s));
    JsonValue list = JsonValue::Array();
    for (const auto& [from, to] : dep.FlowsOf(s)) {
      JsonValue hop = JsonValue::Array();
      hop.Append(JsonValue::Int(from));
      hop.Append(JsonValue::Int(to));
      list.Append(hop);
    }
    entry.Append(list);
    flows.Append(entry);
  }
  d.Set("flows", flows);
  JsonValue serving = JsonValue::Array();
  for (StreamId s : dep.ServedStreams()) {
    JsonValue pair = JsonValue::Array();
    pair.Append(JsonValue::Int(s));
    pair.Append(JsonValue::Int(dep.ServingHost(s)));
    serving.Append(pair);
  }
  d.Set("serving", serving);
  root.Set("deployment", d);

  root.Set("admitted", EncodeIds(planner_.admitted_queries()));

  JsonValue groups = JsonValue::Array();
  for (const std::vector<StreamId>& group : scheduler_.ExportGroups()) {
    groups.Append(EncodeIds(group));
  }
  root.Set("scheduler_groups", groups);

  JsonValue pc = JsonValue::Object();
  pc.Set("exact_hits", JsonValue::Int(cache_.exact_hits()));
  pc.Set("partial_hits", JsonValue::Int(cache_.partial_hits()));
  pc.Set("misses", JsonValue::Int(cache_.misses()));
  root.Set("plan_cache", pc);

  if (telemetry_ != nullptr) {
    const TelemetryCheckpoint ck = telemetry_->ExportState();
    JsonValue tv = JsonValue::Object();
    tv.Set("measurements", JsonValue::Int(ck.measurements));
    JsonValue rng = JsonValue::Array();
    for (uint64_t word : ck.noise_rng_state) rng.Append(EncodeU64(word));
    tv.Set("noise_rng", rng);
    JsonValue rate_ewma = JsonValue::Array();
    for (const auto& [s, value] : ck.rate_ewma) {
      JsonValue pair = JsonValue::Array();
      pair.Append(JsonValue::Int(s));
      pair.Append(EncodeDouble(value));
      rate_ewma.Append(pair);
    }
    tv.Set("rate_ewma", rate_ewma);
    JsonValue cpu_ewma = JsonValue::Array();
    for (double value : ck.cpu_ewma) cpu_ewma.Append(EncodeDouble(value));
    tv.Set("cpu_ewma", cpu_ewma);
    JsonValue trajectories = JsonValue::Array();
    for (const auto& [trajectory, install_ms] : ck.trajectories) {
      trajectories.Append(EncodeTrajectory(trajectory, install_ms));
    }
    tv.Set("trajectories", trajectories);
    root.Set("telemetry", tv);
  }

  return WriteJson(root);
}

// ---------------------------------------------------------------------------
// Restore.
// ---------------------------------------------------------------------------

Status PlanningService::RestoreCheckpoint(const std::string& json) {
  if (stats_.events != 0 || clock_.now_ms() != 0 || !inflight_.empty() ||
      !queue_.empty()) {
    return Status::FailedPrecondition(
        "RestoreCheckpoint requires a freshly constructed service");
  }

  Result<JsonValue> parsed = ParseJson(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::InvalidArgument("checkpoint root is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return BadField("schema", "a string");
  }
  if (schema->string_value() != kCheckpointSchema) {
    return Status::InvalidArgument("unsupported checkpoint schema \"" +
                                   schema->string_value() + "\" (expected \"" +
                                   kCheckpointSchema + "\")");
  }

  // 1. Catalog: replay the warm log, in first-call order, onto the
  // freshly rebuilt catalog. Interning order decides StreamId
  // assignment, so this reproduces every composite id the checkpointing
  // process ever handed out — including the partial interning a
  // graceful exhaustion left behind (failed warms replay and fail
  // again, identically).
  std::vector<StreamId> warm_log;
  SQPR_RETURN_IF_ERROR(
      GetIds(root, "warm_log", catalog_->num_streams(), &warm_log));
  for (StreamId q : warm_log) {
    (void)WarmCatalogLogged(q);  // failures replayed on purpose
  }

  // 2. Measured rates: install every serialized base rate that differs
  // from the rebuilt catalog's estimate (exact compare — the serialized
  // value round-trips bit-for-bit). Composite rates and operator costs
  // recompute deterministically inside UpdateBaseRate.
  Result<const JsonValue*> rates = GetArray(root, "base_rates");
  if (!rates.ok()) return rates.status();
  for (const JsonValue& pair : (*rates)->items()) {
    if (!pair.is_array() || pair.items().size() != 2 ||
        !pair.items()[0].is_int()) {
      return BadField("base_rates", "an array of [id, rate] pairs");
    }
    const int64_t id = pair.items()[0].int_value();
    if (id < 0 || id >= catalog_->num_streams() ||
        !catalog_->stream(static_cast<StreamId>(id)).is_base) {
      return Status::InvalidArgument(
          "checkpoint field \"base_rates\" names a non-base stream");
    }
    double rate = 0.0;
    SQPR_RETURN_IF_ERROR(DecodeDouble(&pair.items()[1], "base_rates", &rate));
    const StreamId s = static_cast<StreamId>(id);
    if (catalog_->stream(s).rate_mbps != rate) {
      Status st = catalog_->UpdateBaseRate(s, rate);
      if (!st.ok()) {
        return Status::InvalidArgument("checkpoint rate install failed: " +
                                       st.ToString());
      }
    }
  }

  // 3. Failed hosts: save the healthy specs and swap in the same
  // all-zero spec HandleHostFailure installs.
  Result<const JsonValue*> failed = GetArray(root, "failed_hosts");
  if (!failed.ok()) return failed.status();
  for (const JsonValue& v : (*failed)->items()) {
    if (!v.is_object()) return BadField("failed_hosts", "an array of objects");
    int64_t host = 0;
    SQPR_RETURN_IF_ERROR(GetInt(v, "host", &host));
    if (host < 0 || host >= cluster_->num_hosts()) {
      return Status::InvalidArgument(
          "checkpoint field \"failed_hosts\" names an unknown host");
    }
    HostSpec spec;
    SQPR_RETURN_IF_ERROR(GetDouble(v, "cpu", &spec.cpu));
    SQPR_RETURN_IF_ERROR(GetDouble(v, "nic_out_mbps", &spec.nic_out_mbps));
    SQPR_RETURN_IF_ERROR(GetDouble(v, "nic_in_mbps", &spec.nic_in_mbps));
    SQPR_RETURN_IF_ERROR(GetDouble(v, "mem_mb", &spec.mem_mb));
    SQPR_RETURN_IF_ERROR(GetString(v, "name", &spec.name));
    const HostId h = static_cast<HostId>(host);
    HostSpec dead;
    dead.cpu = 0.0;
    dead.nic_out_mbps = 0.0;
    dead.nic_in_mbps = 0.0;
    dead.mem_mb = 0.0;
    dead.name = spec.name;
    failed_hosts_[h] = spec;
    cluster_->SetHostSpec(h, dead);
  }

  // 4. Deployment: replay the committed structure through the ordinary
  // mutators (placements, then flows in serialized order, then serving
  // arcs), canonicalize the ledgers exactly as the export did, and
  // reinstate the version counters.
  Result<const JsonValue*> d = GetObject(root, "deployment");
  if (!d.ok()) return d.status();
  Deployment* dep = planner_.mutable_deployment();
  int64_t version = 0;
  int64_t structure_version = 0;
  SQPR_RETURN_IF_ERROR(GetInt(**d, "version", &version));
  SQPR_RETURN_IF_ERROR(GetInt(**d, "structure_version", &structure_version));
  if (version < 0 || structure_version < 0) {
    return BadField("version", "a non-negative integer");
  }
  Result<const JsonValue*> ops = GetArray(**d, "operators");
  if (!ops.ok()) return ops.status();
  for (const JsonValue& entry : (*ops)->items()) {
    if (!entry.is_array() || entry.items().size() != 2 ||
        !entry.items()[0].is_int()) {
      return BadField("operators", "an array of [host, [op...]] pairs");
    }
    const int64_t host = entry.items()[0].int_value();
    if (host < 0 || host >= cluster_->num_hosts()) {
      return Status::InvalidArgument(
          "checkpoint deployment places operators on an unknown host");
    }
    if (!entry.items()[1].is_array()) {
      return BadField("operators", "an array of [host, [op...]] pairs");
    }
    std::vector<OperatorId> on;
    SQPR_RETURN_IF_ERROR(DecodeIds(entry.items()[1], "operators",
                                   catalog_->num_operators(), &on));
    for (OperatorId o : on) {
      Status st = dep->PlaceOperator(static_cast<HostId>(host), o);
      if (!st.ok()) {
        return Status::InvalidArgument(
            "checkpoint deployment replay failed: " + st.ToString());
      }
    }
  }
  Result<const JsonValue*> flows = GetArray(**d, "flows");
  if (!flows.ok()) return flows.status();
  for (const JsonValue& entry : (*flows)->items()) {
    if (!entry.is_array() || entry.items().size() != 2 ||
        !entry.items()[0].is_int() || !entry.items()[1].is_array()) {
      return BadField("flows", "an array of [stream, [[from,to]...]] pairs");
    }
    const int64_t stream = entry.items()[0].int_value();
    if (stream < 0 || stream >= catalog_->num_streams()) {
      return Status::InvalidArgument(
          "checkpoint deployment flows carry an unknown stream");
    }
    for (const JsonValue& hop : entry.items()[1].items()) {
      if (!hop.is_array() || hop.items().size() != 2 ||
          !hop.items()[0].is_int() || !hop.items()[1].is_int()) {
        return BadField("flows", "an array of [stream, [[from,to]...]] pairs");
      }
      const int64_t from = hop.items()[0].int_value();
      const int64_t to = hop.items()[1].int_value();
      if (from < 0 || from >= cluster_->num_hosts() || to < 0 ||
          to >= cluster_->num_hosts()) {
        return Status::InvalidArgument(
            "checkpoint deployment flows touch an unknown host");
      }
      Status st = dep->AddFlow(static_cast<HostId>(from),
                               static_cast<HostId>(to),
                               static_cast<StreamId>(stream));
      if (!st.ok()) {
        return Status::InvalidArgument(
            "checkpoint deployment replay failed: " + st.ToString());
      }
    }
  }
  Result<const JsonValue*> serving = GetArray(**d, "serving");
  if (!serving.ok()) return serving.status();
  for (const JsonValue& pair : (*serving)->items()) {
    if (!pair.is_array() || pair.items().size() != 2 ||
        !pair.items()[0].is_int() || !pair.items()[1].is_int()) {
      return BadField("serving", "an array of [stream, host] pairs");
    }
    const int64_t stream = pair.items()[0].int_value();
    const int64_t host = pair.items()[1].int_value();
    if (stream < 0 || stream >= catalog_->num_streams() || host < 0 ||
        host >= cluster_->num_hosts()) {
      return Status::InvalidArgument(
          "checkpoint serving arcs carry an unknown stream or host");
    }
    Status st = dep->SetServing(static_cast<StreamId>(stream),
                                static_cast<HostId>(host));
    if (!st.ok()) {
      return Status::InvalidArgument("checkpoint deployment replay failed: " +
                                     st.ToString());
    }
  }
  dep->RecomputeAggregates();
  dep->RestoreVersions(static_cast<uint64_t>(version),
                       static_cast<uint64_t>(structure_version));

  std::vector<StreamId> admitted;
  SQPR_RETURN_IF_ERROR(
      GetIds(root, "admitted", catalog_->num_streams(), &admitted));
  planner_.RestoreAdmitted(std::move(admitted));

  // 5. Scheduler backlog: group boundaries survive verbatim (round
  // composition is pinned at enqueue time).
  Result<const JsonValue*> groups = GetArray(root, "scheduler_groups");
  if (!groups.ok()) return groups.status();
  std::vector<std::vector<StreamId>> restored_groups;
  for (const JsonValue& group : (*groups)->items()) {
    if (!group.is_array()) {
      return BadField("scheduler_groups", "an array of arrays");
    }
    std::vector<StreamId> ids;
    SQPR_RETURN_IF_ERROR(DecodeIds(group, "scheduler_groups",
                                   catalog_->num_streams(), &ids));
    restored_groups.push_back(std::move(ids));
  }
  scheduler_.ImportGroups(restored_groups);

  // 6. Service-local bookkeeping.
  std::vector<StreamId> rejected;
  SQPR_RETURN_IF_ERROR(GetIds(root, "rejected_recently",
                              catalog_->num_streams(), &rejected));
  rejected_recently_.assign(rejected.begin(), rejected.end());
  std::vector<StreamId> retried;
  SQPR_RETURN_IF_ERROR(GetIds(root, "deadline_retried",
                              catalog_->num_streams(), &retried));
  deadline_retried_ = std::set<StreamId>(retried.begin(), retried.end());

  int64_t now_ms = 0;
  int64_t ticks_since_measure = 0;
  int64_t next_round_id = 0;
  int64_t audit_round_seq = 0;
  SQPR_RETURN_IF_ERROR(GetInt(root, "now_ms", &now_ms));
  SQPR_RETURN_IF_ERROR(
      GetInt(root, "ticks_since_measure", &ticks_since_measure));
  SQPR_RETURN_IF_ERROR(GetInt(root, "next_round_id", &next_round_id));
  SQPR_RETURN_IF_ERROR(GetInt(root, "audit_round_seq", &audit_round_seq));
  if (now_ms < 0) return BadField("now_ms", "a non-negative integer");
  clock_.AdvanceTo(now_ms);
  ticks_since_measure_ = static_cast<int>(ticks_since_measure);
  next_round_id_ = next_round_id;
  audit_round_seq_ = audit_round_seq;

  // The warm replay above bumped counters (catalog_exhausted); the
  // serialized values are authoritative, so install them last. Counters
  // outside the serialized subset restart at zero by design.
  Result<const JsonValue*> stats = GetObject(root, "stats");
  if (!stats.ok()) return stats.status();
  ServiceStats restored;
  for (const StatField& f : kStatFields) {
    SQPR_RETURN_IF_ERROR(GetInt(**stats, f.name, &(restored.*f.member)));
  }
  stats_ = restored;

  // 7. Reuse index: one grounded-fixpoint rebuild against the restored
  // deployment, then the serialized hit counters (maintenance counters
  // restart — they describe this process, not the workload).
  Result<const JsonValue*> pc = GetObject(root, "plan_cache");
  if (!pc.ok()) return pc.status();
  int64_t exact_hits = 0, partial_hits = 0, misses = 0;
  SQPR_RETURN_IF_ERROR(GetInt(**pc, "exact_hits", &exact_hits));
  SQPR_RETURN_IF_ERROR(GetInt(**pc, "partial_hits", &partial_hits));
  SQPR_RETURN_IF_ERROR(GetInt(**pc, "misses", &misses));
  cache_.Rebuild(deployment());
  cache_.RestoreCounters(exact_hits, partial_hits, misses);
  cache_rebuild_ = false;
  cache_deltas_.clear();

  // 8. Closed-loop telemetry: presence must match the service mode.
  const JsonValue* tv = root.Find("telemetry");
  if ((tv != nullptr) != (telemetry_ != nullptr)) {
    return Status::InvalidArgument(
        tv != nullptr
            ? "checkpoint carries telemetry state but the service runs "
              "open-loop"
            : "checkpoint lacks telemetry state required by closed-loop "
              "options");
  }
  if (tv != nullptr) {
    if (!tv->is_object()) return BadField("telemetry", "an object");
    TelemetryCheckpoint ck;
    SQPR_RETURN_IF_ERROR(GetInt(*tv, "measurements", &ck.measurements));
    Result<const JsonValue*> rng = GetArray(*tv, "noise_rng");
    if (!rng.ok()) return rng.status();
    if ((*rng)->items().size() != ck.noise_rng_state.size()) {
      return BadField("noise_rng", "an array of 4 decimal strings");
    }
    for (size_t i = 0; i < ck.noise_rng_state.size(); ++i) {
      SQPR_RETURN_IF_ERROR(DecodeU64((*rng)->items()[i], "noise_rng",
                                     &ck.noise_rng_state[i]));
    }
    Result<const JsonValue*> rate_ewma = GetArray(*tv, "rate_ewma");
    if (!rate_ewma.ok()) return rate_ewma.status();
    for (const JsonValue& pair : (*rate_ewma)->items()) {
      if (!pair.is_array() || pair.items().size() != 2 ||
          !pair.items()[0].is_int()) {
        return BadField("rate_ewma", "an array of [id, value] pairs");
      }
      double value = 0.0;
      SQPR_RETURN_IF_ERROR(
          DecodeDouble(&pair.items()[1], "rate_ewma", &value));
      ck.rate_ewma[static_cast<StreamId>(pair.items()[0].int_value())] = value;
    }
    Result<const JsonValue*> cpu_ewma = GetArray(*tv, "cpu_ewma");
    if (!cpu_ewma.ok()) return cpu_ewma.status();
    for (const JsonValue& value : (*cpu_ewma)->items()) {
      double out = 0.0;
      SQPR_RETURN_IF_ERROR(DecodeDouble(&value, "cpu_ewma", &out));
      ck.cpu_ewma.push_back(out);
    }
    Result<const JsonValue*> trajectories = GetArray(*tv, "trajectories");
    if (!trajectories.ok()) return trajectories.status();
    for (const JsonValue& v : (*trajectories)->items()) {
      RateTrajectory t;
      int64_t install_ms = 0;
      SQPR_RETURN_IF_ERROR(DecodeTrajectory(v, &t, &install_ms));
      ck.trajectories.emplace_back(t, install_ms);
    }
    Status st = telemetry_->RestoreState(ck);
    if (!st.ok()) {
      return Status::InvalidArgument("checkpoint telemetry restore failed: " +
                                     st.ToString());
    }
  }

  return Status::OK();
}

}  // namespace sqpr
