#ifndef SQPR_SERVICE_CHECKPOINT_H_
#define SQPR_SERVICE_CHECKPOINT_H_

#include <string>

#include "common/status.h"

namespace sqpr {

/// Crash-durable checkpointing of the planning service (the
/// PlanningService::ExportCheckpoint / RestoreCheckpoint pair lives in
/// checkpoint.cc; see docs/ARCHITECTURE.md "Durability & degraded
/// modes").
///
/// A checkpoint is one canonical JSON document (common/json.h) under
/// the versioned schema below. Writers emit every field; readers treat
/// a missing or mis-typed *known* field as InvalidArgument and ignore
/// unknown fields entirely, so a v1 reader keeps accepting documents
/// from writers that have since grown new fields.
inline constexpr char kCheckpointSchema[] = "sqpr-checkpoint-v1";

/// Writes `contents` to `path` through a temp-file + rename(2) protocol:
/// the bytes land in `path + ".tmp"` first and only an atomically
/// renamed, fully written file ever appears under `path`. A crash at any
/// point — including the injected mid-write crash point
/// "checkpoint-write" (common/fault.h) — leaves either the previous
/// checkpoint intact or the previous checkpoint plus a stale temp file,
/// never a torn file under the real name. Flushes to the OS, not to the
/// platter: the durability model is process death (the fault harness's
/// std::_Exit), not power loss.
Status WriteFileAtomic(const std::string& path, const std::string& contents);

/// Slurps a file; NotFound when it cannot be opened, Internal on read
/// errors. Used by the --restore path, whose caller turns any error into
/// a quoted message and a non-zero exit instead of an abort.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace sqpr

#endif  // SQPR_SERVICE_CHECKPOINT_H_
