// Scenario runner CLI: stands up a synthetic DSPS (cluster + Zipf join
// workload, the §V evaluation setup), streams the queries through a
// chosen planner and reports admissions, latency and the final resource
// distribution. Optionally executes the committed deployment on the
// cluster simulator to confirm the plans actually run.
//
// Examples:
//   sqpr_plan --planner sqpr --hosts 6 --queries 90
//   sqpr_plan --planner soda --hosts 15 --streams 300 --arities 2,3
//   sqpr_plan --planner hierarchical --sites 3 --hosts 12 --simulate

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "model/catalog.h"
#include "model/cluster.h"
#include "planner/heuristic/heuristic_planner.h"
#include "planner/hierarchical/hierarchical_planner.h"
#include "planner/soda/soda_planner.h"
#include "planner/sqpr/sqpr_planner.h"
#include "sim/cluster_sim.h"
#include "workload/generator.h"

namespace {

struct Args {
  std::string planner = "sqpr";
  int hosts = 6;
  double cpu = 0.8;
  double nic_mbps = 70.0;
  double link_mbps = 140.0;
  double mem_mb = -1.0;  // <= 0: unlimited
  int streams = 48;
  double rate_mbps = 10.0;
  int queries = 90;
  std::vector<int> arities = {2, 3};
  double zipf = 1.0;
  uint64_t seed = 1;
  int sites = 2;
  int64_t timeout_ms = 150;
  bool simulate = false;
  bool verbose = false;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: sqpr_plan [--planner sqpr|heuristic|soda|hierarchical]\n"
      "  [--hosts N] [--cpu F] [--nic MBPS] [--link MBPS] [--mem MB]\n"
      "  [--streams N] [--rate MBPS] [--queries N] [--arities 2,3,...]\n"
      "  [--zipf S] [--seed N] [--sites N] [--timeout-ms N]\n"
      "  [--simulate] [--verbose]\n");
}

bool ParseArities(const std::string& text, std::vector<int>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    const int k = std::atoi(text.substr(pos, next - pos).c_str());
    if (k < 2 || k > 12) return false;
    out->push_back(k);
    pos = next + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqpr;

  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--planner" && (v = next())) {
      args.planner = v;
    } else if (flag == "--hosts" && (v = next())) {
      args.hosts = std::atoi(v);
    } else if (flag == "--cpu" && (v = next())) {
      args.cpu = std::atof(v);
    } else if (flag == "--nic" && (v = next())) {
      args.nic_mbps = std::atof(v);
    } else if (flag == "--link" && (v = next())) {
      args.link_mbps = std::atof(v);
    } else if (flag == "--mem" && (v = next())) {
      args.mem_mb = std::atof(v);
    } else if (flag == "--streams" && (v = next())) {
      args.streams = std::atoi(v);
    } else if (flag == "--rate" && (v = next())) {
      args.rate_mbps = std::atof(v);
    } else if (flag == "--queries" && (v = next())) {
      args.queries = std::atoi(v);
    } else if (flag == "--arities" && (v = next())) {
      if (!ParseArities(v, &args.arities)) {
        Usage();
        return 2;
      }
    } else if (flag == "--zipf" && (v = next())) {
      args.zipf = std::atof(v);
    } else if (flag == "--seed" && (v = next())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--sites" && (v = next())) {
      args.sites = std::atoi(v);
    } else if (flag == "--timeout-ms" && (v = next())) {
      args.timeout_ms = std::atoll(v);
    } else if (flag == "--simulate") {
      args.simulate = true;
    } else if (flag == "--verbose") {
      args.verbose = true;
    } else {
      Usage();
      return 2;
    }
  }
  if (args.hosts < 1 || args.streams < 1 || args.queries < 1) {
    Usage();
    return 2;
  }

  HostSpec host{args.cpu, args.nic_mbps, args.nic_mbps, ""};
  if (args.mem_mb > 0) host.mem_mb = args.mem_mb;
  Cluster cluster(args.hosts, host, args.link_mbps);
  Catalog catalog{CostModel{}};

  WorkloadConfig wc;
  wc.num_base_streams = args.streams;
  wc.base_rate_mbps = args.rate_mbps;
  wc.zipf_s = args.zipf;
  wc.arities = args.arities;
  wc.num_queries = args.queries;
  wc.seed = args.seed;
  Result<Workload> workload = GenerateWorkload(wc, args.hosts, &catalog);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<Planner> planner;
  if (args.planner == "sqpr") {
    SqprPlanner::Options options;
    options.timeout_ms = args.timeout_ms;
    planner = std::make_unique<SqprPlanner>(&cluster, &catalog, options);
  } else if (args.planner == "heuristic") {
    planner = std::make_unique<HeuristicPlanner>(&cluster, &catalog,
                                                 HeuristicPlanner::Options{});
  } else if (args.planner == "soda") {
    planner = std::make_unique<SodaPlanner>(&cluster, &catalog,
                                            SodaPlanner::Options{});
  } else if (args.planner == "hierarchical") {
    HierarchicalPlanner::Options options;
    options.num_sites = args.sites;
    options.timeout_ms = args.timeout_ms;
    planner =
        std::make_unique<HierarchicalPlanner>(&cluster, &catalog, options);
  } else {
    Usage();
    return 2;
  }

  std::printf("scenario: %d hosts (cpu %.2f, nic %.0f, link %.0f%s), "
              "%d base streams @ %.0f Mbps, %d queries, zipf %.1f\n",
              args.hosts, args.cpu, args.nic_mbps, args.link_mbps,
              args.mem_mb > 0
                  ? (", mem " + std::to_string(args.mem_mb) + " MB").c_str()
                  : "",
              args.streams, args.rate_mbps, args.queries, args.zipf);
  std::printf("planner: %s\n\n", planner->name().c_str());

  int admitted = 0, duplicates = 0, rejected = 0;
  double total_ms = 0.0;
  for (StreamId q : workload->queries) {
    Result<PlanningStats> stats = planner->SubmitQuery(q);
    if (!stats.ok()) {
      std::fprintf(stderr, "planning error: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    total_ms += stats->wall_ms;
    if (stats->already_served) {
      ++duplicates;
    } else if (stats->admitted) {
      ++admitted;
    } else {
      ++rejected;
    }
    if (args.verbose) {
      std::printf("  %-16s %-8s %7.1f ms\n", catalog.stream(q).name.c_str(),
                  stats->already_served ? "dup"
                  : stats->admitted     ? "admit"
                                        : "reject",
                  stats->wall_ms);
    }
  }

  std::printf("admitted %d, duplicate %d, rejected %d  (avg %.1f ms/query)\n",
              admitted, duplicates, rejected,
              total_ms / workload->queries.size());

  const Deployment& dep = planner->deployment();
  std::printf("\nper-host usage (cpu/budget, nic-out Mbps):\n");
  for (HostId h = 0; h < cluster.num_hosts(); ++h) {
    std::printf("  host %-3d %.2f/%.2f  %7.1f\n", h, dep.CpuUsed(h),
                cluster.host(h).cpu, dep.NicOutUsed(h));
  }
  const Status audit = dep.Validate();
  std::printf("deployment audit: %s\n", audit.ToString().c_str());
  if (!audit.ok()) return 1;

  if (args.simulate) {
    SimConfig sim_config;
    sim_config.rate_scale = 0.02;
    sim_config.duration_ms = 5000;
    ClusterSim sim(dep, sim_config);
    const Status setup = sim.Setup();
    if (!setup.ok()) {
      std::fprintf(stderr, "sim setup: %s\n", setup.ToString().c_str());
      return 1;
    }
    Result<SimReport> report = sim.Run();
    if (!report.ok()) {
      std::fprintf(stderr, "sim run: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("\nsimulated %lld tuples; per-host measured CPU:",
                static_cast<long long>(report->total_tuples_processed));
    for (double u : report->cpu_utilization) std::printf(" %.0f%%", u * 100);
    std::printf("\n");
  }
  return 0;
}
