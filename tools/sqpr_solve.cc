// Standalone MILP solver CLI over the library's CPLEX-substitute stack
// (presolve + cutting planes + branch-and-bound). Reads free-format MPS;
// useful for replaying reduced SQPR models captured via WriteMpsFile and
// for exercising the solver on external instances.
//
// Usage:
//   sqpr_solve model.mps [--time-limit-ms N] [--max-nodes N]
//              [--no-presolve] [--no-cuts] [--write-lp out.lp]

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <string>

#include "milp/mps_io.h"
#include "milp/solver.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: sqpr_solve model.mps [--time-limit-ms N] "
               "[--max-nodes N] [--no-presolve] [--no-cuts] "
               "[--write-lp out.lp]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::string path;
  std::string write_lp;
  sqpr::milp::SolverOptions options;
  int64_t time_limit_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--time-limit-ms" && i + 1 < argc) {
      time_limit_ms = std::atoll(argv[++i]);
    } else if (arg == "--max-nodes" && i + 1 < argc) {
      options.max_nodes = std::atoll(argv[++i]);
    } else if (arg == "--no-presolve") {
      options.presolve = false;
    } else if (arg == "--no-cuts") {
      options.cuts.enable = false;
    } else if (arg == "--write-lp" && i + 1 < argc) {
      write_lp = argv[++i];
    } else if (arg[0] == '-') {
      Usage();
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  sqpr::Result<sqpr::milp::Model> model = sqpr::milp::ReadMpsFile(path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("read %s: %d variables (%d integer), %d rows\n", path.c_str(),
              model->lp.num_variables(),
              static_cast<int>(
                  std::count(model->integer.begin(), model->integer.end(),
                             true)),
              model->lp.num_rows());

  if (!write_lp.empty()) {
    const sqpr::Status st = sqpr::milp::WriteLpFile(*model, write_lp);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote LP-format copy to %s\n", write_lp.c_str());
  }

  if (time_limit_ms > 0) {
    options.deadline = sqpr::Deadline::AfterMillis(time_limit_ms);
  }
  sqpr::milp::Solver solver;
  const sqpr::milp::MipResult result = solver.Solve(*model, options);

  std::printf("status     %s\n", sqpr::milp::MipStatusName(result.status));
  if (result.has_solution()) {
    std::printf("objective  %.10g\n", result.objective);
    std::printf("bound      %.10g\n", result.best_bound);
    std::printf("gap        %.3g%%\n", 100.0 * result.Gap());
  }
  std::printf("nodes      %lld\n", static_cast<long long>(result.nodes));
  std::printf("lp iters   %lld\n",
              static_cast<long long>(result.lp_iterations));
  std::printf("wall       %.1f ms\n", result.wall_ms);
  if (result.has_solution()) {
    std::printf("nonzero solution values:\n");
    for (int v = 0; v < model->lp.num_variables(); ++v) {
      if (result.x[v] != 0.0) {
        const std::string& name = model->lp.variable_name(v);
        std::printf("  %-24s %.10g\n",
                    name.empty() ? ("x" + std::to_string(v)).c_str()
                                 : name.c_str(),
                    result.x[v]);
      }
    }
  }
  return result.status == sqpr::milp::MipStatus::kNoSolution ? 3 : 0;
}
