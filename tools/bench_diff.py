#!/usr/bin/env python3
"""Diffs two BENCH_*.json trajectory files (bench_util.h schema v2).

Matches records across the two files by (scenario, labels), then
reports per-metric deltas — absolute and relative — with the latency
headliners (wall_ms, *_p50_ms, *_p95_ms, *_p99_ms, max_event_ms)
first. Counter-like metrics that changed (admitted, evictions, ...)
are reported too: on a deterministic bench they should never move
between builds, so a count delta flags a behaviour change, not noise.

Intended as a non-gating CI report: exit 0 whenever both files parse
and describe the same bench, regardless of how bad the numbers look.
--gate-pct P turns it into a gate that fails when any latency metric
regressed by more than P percent (counters still never gate).

Usage:
  tools/bench_diff.py BASELINE.json CANDIDATE.json [--gate-pct P]
"""

import argparse
import json
import sys

# Metrics where smaller is better and run-to-run noise is expected.
LATENCY_KEYS = (
    "wall_ms",
    "max_event_ms",
    "solver_p50_ms",
    "solver_p95_ms",
    "solver_p99_ms",
    "measure_ms_avg",
    "measure_ms_max",
    "measure_ms_p99",
    "export_first_ms",
    "export_ms_avg",
    "write_ms_avg",
    "restore_ms",
)
# Metrics where larger is better.
THROUGHPUT_KEYS = ("events_per_s",)


def fail(msg):
    print(f"bench_diff: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    if data.get("schema_version") != 2:
        fail(
            f"{path}: schema_version is {data.get('schema_version')!r}, "
            f"want 2"
        )
    for key in ("bench", "seed", "records"):
        if key not in data:
            fail(f"{path}: missing {key}")
    if not isinstance(data["records"], list):
        fail(f"{path}: records is not a list")
    for i, rec in enumerate(data["records"]):
        for key in ("scenario", "labels", "metrics"):
            if key not in rec:
                fail(f"{path}: records[{i}] missing {key}")
    return data


def record_key(rec):
    return (rec["scenario"], tuple(sorted(rec["labels"].items())))


def key_str(key):
    scenario, labels = key
    lbl = ", ".join(f"{k}={v}" for k, v in labels)
    return f"{scenario} [{lbl}]"


def main():
    ap = argparse.ArgumentParser(description="diff two BENCH json files")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument(
        "--gate-pct",
        type=float,
        default=None,
        help="fail when a latency metric regresses by more than this "
        "percentage (default: report only, never fail)",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    if base["bench"] != cand["bench"]:
        fail(
            f"different benches: {base['bench']!r} vs {cand['bench']!r}"
        )
    if base["seed"] != cand["seed"]:
        print(
            f"bench_diff: note: seeds differ ({base['seed']} vs "
            f"{cand['seed']}) — records compare different workloads"
        )

    base_by_key = {record_key(r): r["metrics"] for r in base["records"]}
    cand_by_key = {record_key(r): r["metrics"] for r in cand["records"]}
    only_base = sorted(
        set(base_by_key) - set(cand_by_key), key=key_str
    )
    only_cand = sorted(
        set(cand_by_key) - set(base_by_key), key=key_str
    )
    for k in only_base:
        print(f"bench_diff: note: only in baseline: {key_str(k)}")
    for k in only_cand:
        print(f"bench_diff: note: only in candidate: {key_str(k)}")

    print(
        f"bench {base['bench']} (seed {base['seed']}): "
        f"{len(base_by_key)} baseline records vs {len(cand_by_key)} "
        f"candidate records, {len(set(base_by_key) & set(cand_by_key))} "
        f"matched"
    )

    worst_regression = None  # (pct, record key, metric)
    count_changes = 0
    for key in sorted(set(base_by_key) & set(cand_by_key), key=key_str):
        b, c = base_by_key[key], cand_by_key[key]
        shared = sorted(set(b) & set(c))
        lines = []
        for metric in LATENCY_KEYS + THROUGHPUT_KEYS:
            if metric not in b or metric not in c:
                continue
            vb, vc = float(b[metric]), float(c[metric])
            delta = vc - vb
            pct = 100.0 * delta / vb if vb != 0 else 0.0
            # Regression = slower latency or lower throughput.
            reg_pct = -pct if metric in THROUGHPUT_KEYS else pct
            marker = ""
            if vb != 0 and abs(pct) >= 5.0:
                marker = "  <-- " + (
                    "regressed" if reg_pct > 0 else "improved"
                )
            lines.append(
                f"    {metric:<22} {vb:>12.4g} -> {vc:>12.4g}  "
                f"({pct:+.1f}%){marker}"
            )
            if vb != 0 and (
                worst_regression is None or reg_pct > worst_regression[0]
            ):
                worst_regression = (reg_pct, key, metric)
        for metric in shared:
            if metric in LATENCY_KEYS or metric in THROUGHPUT_KEYS:
                continue
            vb, vc = b[metric], c[metric]
            if vb != vc:
                count_changes += 1
                lines.append(
                    f"    {metric:<22} {vb:>12g} -> {vc:>12g}  "
                    f"<-- count changed (deterministic metric)"
                )
        if lines:
            print(f"\n  {key_str(key)}")
            for line in lines:
                print(line)

    print()
    if count_changes:
        print(
            f"bench_diff: {count_changes} deterministic counters changed "
            f"— the candidate build behaves differently, not just slower"
        )
    if worst_regression is not None:
        pct, key, metric = worst_regression
        print(
            f"bench_diff: worst latency/throughput regression: "
            f"{metric} {pct:+.1f}% in {key_str(key)}"
        )
        if args.gate_pct is not None and pct > args.gate_pct:
            fail(
                f"{metric} regressed {pct:+.1f}% "
                f"(> {args.gate_pct:.1f}%) in {key_str(key)}"
            )
    sys.exit(0)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
