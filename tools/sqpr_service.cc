// Continuous planning service runner: stands up a synthetic DSPS
// (cluster + Zipf join workload, the §V setup), generates or loads a
// timestamped event trace — query arrivals/departures, host
// failures/rejoins, monitor drift reports, ticks — and replays it
// through the PlanningService, reporting per-event and per-stage
// latency, admission statistics, plan-cache effectiveness and the final
// committed deployment audit. With --workers N, re-planning rounds
// solve on a worker pool off the event-loop thread (see
// docs/ARCHITECTURE.md for the threading model).
//
// Examples:
//   sqpr_service --hosts 6 --events 200 --seed 7
//   sqpr_service --events 500 --save-trace /tmp/churn.trace --verbose
//   sqpr_service --trace /tmp/churn.trace --workers 4

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/stats.h"
#include "model/catalog.h"
#include "service/checkpoint.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "model/cluster.h"
#include "service/planning_service.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

struct Args {
  int hosts = 6;
  double cpu = 0.8;
  double nic_mbps = 70.0;
  double link_mbps = 140.0;
  int streams = 48;
  double rate_mbps = 10.0;
  int queries = 400;  // arrival pool (reused cyclically by the trace)
  std::vector<int> arities = {2, 3};
  double zipf = 1.0;
  uint64_t seed = 1;
  int events = 200;
  int64_t timeout_ms = 150;
  int64_t max_nodes = 0;  // 0 = keep the planner default
  int replan_round = 8;
  int workers = 0;
  int pipeline_depth = 2;
  bool closed_loop = false;
  sqpr::MeasureMode measure_mode = sqpr::MeasureMode::kEngine;
  int measure_period = 4;
  uint64_t rate_seed = 0;       // 0 = follow --seed
  bool rate_seed_set = false;
  std::string trace_path;       // load instead of generating
  std::string save_trace_path;  // write the generated trace
  std::string trace_out_path;   // flight-recorder Chrome trace JSON
  size_t trace_capacity = 1 << 15;
  std::string metrics_out_path; // metrics exposition file
  int64_t metrics_interval_ms = 0;  // 0 = one snapshot at exit
  std::string metrics_format = "json";  // json | openmetrics
  std::string stats_json_path;  // final ServiceStats JSON
  std::string audit_out_path;   // decision audit journal JSONL
  bool audit_canonical = false; // strip speculative/wall strata
  double stall_ms = 0.0;        // watchdog: event-loop stall threshold
  double budget_admit_ms = 0.0;  // watchdog: per-stage budgets
  double budget_solve_ms = 0.0;
  double budget_commit_ms = 0.0;
  double budget_barrier_ms = 0.0;
  double budget_measure_ms = 0.0;
  std::string checkpoint_out_path;  // crash-durable service checkpoint
  int64_t checkpoint_every = 0;     // events between checkpoints (0 = final only)
  std::string restore_path;         // resume from a checkpoint
  int64_t solve_deadline_ms = 0;    // degraded-mode solve budget (0 = off)
  bool verbose = false;
};

void Usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: sqpr_service [flags]\n"
      "\n"
      "Replays a service event trace (generated or loaded) through the\n"
      "continuous SQPR planning service and reports latency, admission,\n"
      "re-planning, plan-cache and incremental-solve statistics (model\n"
      "patches vs rebuilds of the cached MILP skeleton, root-basis warm\n"
      "starts vs stale-basis discards).\n"
      "\n"
      "Scenario flags (synthetic cluster + workload):\n"
      "  --hosts N        cluster size (default 6, min 2)\n"
      "  --cpu F          per-host CPU budget in CPU units (default 0.8)\n"
      "  --nic MBPS       per-host NIC in/out budget (default 70)\n"
      "  --link MBPS      per-link budget (default 140)\n"
      "  --streams N      number of base streams (default 48)\n"
      "  --rate MBPS      base-stream rate estimate (default 10)\n"
      "  --queries N      arrival pool size, reused cyclically (default 400)\n"
      "  --arities K,K..  join arities sampled for queries (default 2,3)\n"
      "  --zipf S         Zipf skew of leaf popularity (default 1.0)\n"
      "  --seed N         RNG seed for workload AND trace (default 1)\n"
      "\n"
      "Trace flags:\n"
      "  --events N       events to generate (default 200)\n"
      "  --trace FILE     load a saved trace instead of generating one\n"
      "  --save-trace FILE\n"
      "                   write the generated trace to FILE\n"
      "\n"
      "Trace file format (one event per line; the same event/trace\n"
      "schema as docs/ARCHITECTURE.md §2; '#' comments and blank lines\n"
      "are ignored; times are virtual milliseconds, strictly ordered by\n"
      "(time, line order)):\n"
      "  <t_ms> arrival <stream>        admit canonical query stream\n"
      "  <t_ms> departure <stream>      remove + GC unshared support\n"
      "  <t_ms> host-failure <host>     zero budgets, evict fallout\n"
      "  <t_ms> host-join <host>        restore budgets, retry rejected\n"
      "  <t_ms> monitor <n> {<stream> <mbps>}*n [cpu <m> <u0> ... <um-1>]\n"
      "                                 measured base rates (Mbps) and\n"
      "                                 per-host CPU fractions (the\n"
      "                                 paper's SIV-B drift cycle)\n"
      "  <t_ms> tick                    drive deferred re-plan rounds\n"
      "                                 (and closed-loop measurement)\n"
      "  <t_ms> rate <stream> constant <mbps>\n"
      "  <t_ms> rate <stream> step <mbps> <at_ms> <factor>\n"
      "  <t_ms> rate <stream> walk <mbps> <period_ms> <vol> <min_f> <max_f>\n"
      "  <t_ms> rate <stream> periodic <mbps> <period_ms> <ampl> <phase>\n"
      "                                 closed-loop ground-truth rate\n"
      "                                 trajectories (times relative to\n"
      "                                 the event timestamp); ignored\n"
      "                                 without --closed-loop\n"
      "Generated traces default to the TraceConfig in\n"
      "src/workload/trace.h: mean event gap 50 ms, kind weights\n"
      "arrival 1.0 / departure 0.35 / failure 0.03 / join 0.06 /\n"
      "drift 0.05 / tick 0.10, floors of 1 failure and 1 drift report,\n"
      "drift scale in [0.5, 2.5] over 2 base streams per report.\n"
      "\n"
      "Service flags:\n"
      "  --timeout-ms N   per-query MILP solver deadline (default 150)\n"
      "  --max-nodes N    branch-and-bound node budget per solve; combine\n"
      "                   with a large --timeout-ms for bit-for-bit\n"
      "                   reproducible replays independent of machine\n"
      "                   load and worker count (0 = planner default)\n"
      "  --replan-round N max queries re-planned per bounded round\n"
      "                   (default 8)\n"
      "  --workers N      worker threads solving re-planning rounds off\n"
      "                   the event-loop thread (default 0 = the same\n"
      "                   speculative rounds solved on the loop thread).\n"
      "                   The pool is clamped to the machine's core\n"
      "                   count (oversubscription only inflates solver\n"
      "                   tail latency). The same trace+seed commits\n"
      "                   identical deployments for any N >= 0 when the\n"
      "                   solver is node-bounded (see\n"
      "                   docs/ARCHITECTURE.md)\n"
      "  --pipeline-depth N\n"
      "                   re-planning rounds in flight at once (default\n"
      "                   2, min 1). Each round pins its own planner\n"
      "                   snapshot at dispatch and commits at a fixed\n"
      "                   logical point — one round per consumed event,\n"
      "                   FIFO — so depth changes only how early solves\n"
      "                   start: committed deployments are bit-identical\n"
      "                   across depths (and worker counts). Proposals\n"
      "                   gone stale under an older round's commit are\n"
      "                   re-solved inline at their pinned commit point\n"
      "                   (the commit-conflicts counter). 1 restores the\n"
      "                   single-round dispatch-then-commit behaviour\n"
      "\n"
      "Closed-loop flags (SIV-C self-measurement):\n"
      "  --closed-loop    the service measures its own committed\n"
      "                   deployment every --measure-period ticks\n"
      "                   (ClusterSim under the telemetry rate model's\n"
      "                   ground-truth rates) and feeds the result\n"
      "                   through the SIV-B drift cycle — re-planning\n"
      "                   fires with zero scripted monitor events.\n"
      "                   Generated traces emit rate directives instead\n"
      "                   of monitor reports (and more ticks)\n"
      "  --measure-mode engine|analytic\n"
      "                   how a self-measurement observes the committed\n"
      "                   deployment (default engine). engine executes\n"
      "                   it via ClusterSim under the true rates — the\n"
      "                   ground truth, one simulation per measuring\n"
      "                   tick. analytic derives the same observables\n"
      "                   from the deployment ledgers scaled by\n"
      "                   truth/estimate rate ratios — no simulation,\n"
      "                   O(placed operators) per tick, same drift\n"
      "                   decisions at zero noise (the equivalence\n"
      "                   contract in src/telemetry/README.md)\n"
      "  --measure-period N\n"
      "                   ticks between self-measurements (default 4)\n"
      "  --rate-seed N    seed for ground-truth trajectories and\n"
      "                   measurement noise (default: --seed)\n"
      "\n"
      "Observability flags (docs/ARCHITECTURE.md \u00a77):\n"
      "  --trace-out FILE enable the flight recorder for the replay and\n"
      "                   write the captured spans as Chrome trace_event\n"
      "                   JSON (open in Perfetto / chrome://tracing).\n"
      "                   Spans cover the full event path and the solver\n"
      "                   phases; tracing never changes behavior or the\n"
      "                   committed deployments\n"
      "  --trace-capacity N\n"
      "                   spans retained per thread before the oldest are\n"
      "                   overwritten (default 32768; drops are counted\n"
      "                   in the trace's otherData)\n"
      "  --metrics-out FILE\n"
      "                   write a metrics exposition after the run: the\n"
      "                   sqpr-metrics-v1 JSON snapshot (default), or —\n"
      "                   with --metrics-interval — the\n"
      "                   sqpr-metrics-series-v1 JSONL time series\n"
      "  --metrics-interval MS\n"
      "                   periodic exposition: publish a registry\n"
      "                   snapshot every MS *virtual* milliseconds and\n"
      "                   append one series line per interval to\n"
      "                   --metrics-out (cumulative + per-interval delta;\n"
      "                   delta quantiles are resolved from the window's\n"
      "                   own histogram buckets, not approximated)\n"
      "  --metrics-format json|openmetrics\n"
      "                   exposition format (default json). openmetrics\n"
      "                   writes OpenMetrics text (counters as _total,\n"
      "                   histograms as quantile summaries, '# EOF'\n"
      "                   terminated; one block per interval in series\n"
      "                   mode, labelled with the virtual time)\n"
      "  --stats-json FILE\n"
      "                   write the final ServiceStats as JSON (schema\n"
      "                   sqpr-service-stats-v1): every counter, the\n"
      "                   stage histograms and the watchdog tallies\n"
      "  --audit-out FILE enable the decision audit journal and write it\n"
      "                   as sqpr-audit-v1 JSONL: every admit / reject /\n"
      "                   re-plan / evict / drift / conflict / unwind\n"
      "                   decision in commit order, with reason codes,\n"
      "                   virtual timestamps, wall latencies and pre/post\n"
      "                   deployment fingerprints\n"
      "  --audit-canonical\n"
      "                   write only the canonical stratum — speculative\n"
      "                   records and wall-clock fields dropped. This\n"
      "                   rendering is byte-identical across --workers\n"
      "                   and --pipeline-depth for the same trace+seed\n"
      "  --stall-ms F     watchdog: count Step() calls whose wall time\n"
      "                   exceeds F ms as event-loop stalls (the virtual\n"
      "                   clock stood still while the wall clock ran)\n"
      "  --budget-ms STAGE=F\n"
      "                   watchdog: per-stage wall-latency budget in ms;\n"
      "                   STAGE one of admit,solve,commit,barrier,\n"
      "                   measure. Repeatable. Samples over budget bump\n"
      "                   the matching *_budget_breaches counter\n"
      "\n"
      "Durability flags (docs/ARCHITECTURE.md \"Durability & degraded\n"
      "modes\"):\n"
      "  --checkpoint-out FILE\n"
      "                   write a sqpr-checkpoint-v1 JSON checkpoint of\n"
      "                   the full service state to FILE when the replay\n"
      "                   finishes (and periodically, with\n"
      "                   --checkpoint-every). Writes go through a\n"
      "                   temp-file + atomic-rename protocol: a crash\n"
      "                   mid-write never leaves a torn file under FILE,\n"
      "                   only the previous intact checkpoint\n"
      "  --checkpoint-every N\n"
      "                   also checkpoint after every N consumed events\n"
      "                   (requires --checkpoint-out). Each checkpoint is\n"
      "                   a pipeline barrier — in-flight speculative\n"
      "                   rounds finish first — so a restored run and an\n"
      "                   uninterrupted run with the same cadence commit\n"
      "                   bit-identical deployments\n"
      "  --restore FILE   resume from a checkpoint instead of starting\n"
      "                   fresh: rebuild the scenario from the SAME\n"
      "                   scenario/trace flags (same --seed, --hosts,\n"
      "                   --streams, ... and the same trace), restore the\n"
      "                   service state from FILE, and replay only the\n"
      "                   not-yet-consumed suffix of the trace. An\n"
      "                   unreadable, truncated, corrupted or\n"
      "                   version-mismatched FILE exits with status 1 and\n"
      "                   a quoted error on stderr — never an abort.\n"
      "                   Unknown JSON fields are ignored (forward\n"
      "                   compatibility)\n"
      "  --solve-deadline-ms N\n"
      "                   degraded-mode solving: give each MILP solve a\n"
      "                   wall-clock deadline of N ms on top of\n"
      "                   --timeout-ms. On breach the solver returns its\n"
      "                   best incumbent (or falls back to the greedy\n"
      "                   heuristic) instead of overrunning the round;\n"
      "                   breaches are reason-coded in the audit journal\n"
      "                   and counted in solver_deadline_breaches /\n"
      "                   heuristic_fallbacks (0 = off; negative forces\n"
      "                   an instantly-expired deadline on every solve,\n"
      "                   the deterministic lever the degraded-mode tests\n"
      "                   use)\n"
      "\n"
      "The SQPR_FAULT=<point>:<n> environment variable (see\n"
      "src/common/fault.h) kills the process with exit code 43 at the\n"
      "n-th hit of a named crash point (event, mid-round,\n"
      "checkpoint-write) for crash-restore drills:\n"
      "  SQPR_FAULT=event:120 sqpr_service --checkpoint-out ck.json \\\n"
      "      --checkpoint-every 40 ...   # crashes after event 120\n"
      "  sqpr_service --restore ck.json --checkpoint-out ck.json \\\n"
      "      --checkpoint-every 40 ...   # finishes the replay\n"
      "\n"
      "  --verbose        print every event outcome\n"
      "  --help           show this message and exit\n");
}

bool ParseArities(const std::string& text, std::vector<int>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    const int k = std::atoi(text.substr(pos, next - pos).c_str());
    if (k < 2 || k > 12) return false;
    out->push_back(k);
    pos = next + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sqpr;

  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (flag == "--help" || flag == "-h") {
      Usage(stdout);
      return 0;
    } else if (flag == "--hosts" && (v = next())) {
      args.hosts = std::atoi(v);
    } else if (flag == "--cpu" && (v = next())) {
      args.cpu = std::atof(v);
    } else if (flag == "--nic" && (v = next())) {
      args.nic_mbps = std::atof(v);
    } else if (flag == "--link" && (v = next())) {
      args.link_mbps = std::atof(v);
    } else if (flag == "--streams" && (v = next())) {
      args.streams = std::atoi(v);
    } else if (flag == "--rate" && (v = next())) {
      args.rate_mbps = std::atof(v);
    } else if (flag == "--queries" && (v = next())) {
      args.queries = std::atoi(v);
    } else if (flag == "--arities" && (v = next())) {
      if (!ParseArities(v, &args.arities)) {
        std::fprintf(stderr, "invalid --arities value: %s\n\n", v);
        Usage(stderr);
        return 2;
      }
    } else if (flag == "--zipf" && (v = next())) {
      args.zipf = std::atof(v);
    } else if (flag == "--seed" && (v = next())) {
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--events" && (v = next())) {
      args.events = std::atoi(v);
    } else if (flag == "--timeout-ms" && (v = next())) {
      args.timeout_ms = std::atoll(v);
    } else if (flag == "--max-nodes" && (v = next())) {
      args.max_nodes = std::atoll(v);
    } else if (flag == "--replan-round" && (v = next())) {
      args.replan_round = std::atoi(v);
    } else if (flag == "--workers" && (v = next())) {
      args.workers = std::atoi(v);
    } else if (flag == "--pipeline-depth" && (v = next())) {
      args.pipeline_depth = std::atoi(v);
    } else if (flag == "--closed-loop") {
      args.closed_loop = true;
    } else if (flag == "--measure-mode" && (v = next())) {
      if (std::strcmp(v, "engine") == 0) {
        args.measure_mode = sqpr::MeasureMode::kEngine;
      } else if (std::strcmp(v, "analytic") == 0) {
        args.measure_mode = sqpr::MeasureMode::kAnalytic;
      } else {
        std::fprintf(stderr, "invalid --measure-mode value: %s\n\n", v);
        Usage(stderr);
        return 2;
      }
    } else if (flag == "--measure-period" && (v = next())) {
      args.measure_period = std::atoi(v);
    } else if (flag == "--rate-seed" && (v = next())) {
      args.rate_seed = std::strtoull(v, nullptr, 10);
      args.rate_seed_set = true;
    } else if (flag == "--trace" && (v = next())) {
      args.trace_path = v;
    } else if (flag == "--save-trace" && (v = next())) {
      args.save_trace_path = v;
    } else if (flag == "--trace-out" && (v = next())) {
      args.trace_out_path = v;
    } else if (flag == "--trace-capacity" && (v = next())) {
      args.trace_capacity = static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--metrics-out" && (v = next())) {
      args.metrics_out_path = v;
    } else if (flag == "--metrics-interval" && (v = next())) {
      args.metrics_interval_ms = std::atoll(v);
    } else if (flag == "--metrics-format" && (v = next())) {
      args.metrics_format = v;
      if (args.metrics_format != "json" &&
          args.metrics_format != "openmetrics") {
        std::fprintf(stderr, "invalid --metrics-format value: %s\n\n", v);
        Usage(stderr);
        return 2;
      }
    } else if (flag == "--stats-json" && (v = next())) {
      args.stats_json_path = v;
    } else if (flag == "--audit-out" && (v = next())) {
      args.audit_out_path = v;
    } else if (flag == "--audit-canonical") {
      args.audit_canonical = true;
    } else if (flag == "--stall-ms" && (v = next())) {
      args.stall_ms = std::atof(v);
    } else if (flag == "--budget-ms" && (v = next())) {
      const char* eq = std::strchr(v, '=');
      const double ms = eq != nullptr ? std::atof(eq + 1) : -1.0;
      const std::string stage(v, eq != nullptr ? eq - v : std::strlen(v));
      if (eq == nullptr || ms <= 0.0) {
        std::fprintf(stderr, "invalid --budget-ms value: %s "
                     "(want STAGE=MS with MS > 0)\n\n", v);
        Usage(stderr);
        return 2;
      }
      if (stage == "admit") {
        args.budget_admit_ms = ms;
      } else if (stage == "solve") {
        args.budget_solve_ms = ms;
      } else if (stage == "commit") {
        args.budget_commit_ms = ms;
      } else if (stage == "barrier") {
        args.budget_barrier_ms = ms;
      } else if (stage == "measure") {
        args.budget_measure_ms = ms;
      } else {
        std::fprintf(stderr, "unknown --budget-ms stage: %s\n\n",
                     stage.c_str());
        Usage(stderr);
        return 2;
      }
    } else if (flag == "--checkpoint-out" && (v = next())) {
      args.checkpoint_out_path = v;
    } else if (flag == "--checkpoint-every" && (v = next())) {
      args.checkpoint_every = std::atoll(v);
    } else if (flag == "--restore" && (v = next())) {
      args.restore_path = v;
    } else if (flag == "--solve-deadline-ms" && (v = next())) {
      args.solve_deadline_ms = std::atoll(v);
    } else if (flag == "--verbose") {
      args.verbose = true;
    } else {
      std::fprintf(stderr, "unknown flag (or flag missing its value): %s\n\n",
                   flag.c_str());
      Usage(stderr);
      return 2;
    }
  }
  if (args.hosts < 2 || args.streams < 1 || args.queries < 1 ||
      args.events < 1 || args.workers < 0 || args.pipeline_depth < 1 ||
      args.measure_period < 1 || args.metrics_interval_ms < 0 ||
      args.checkpoint_every < 0) {
    std::fprintf(stderr, "invalid scenario parameters\n\n");
    Usage(stderr);
    return 2;
  }
  if (args.checkpoint_every > 0 && args.checkpoint_out_path.empty()) {
    std::fprintf(stderr, "--checkpoint-every requires --checkpoint-out\n\n");
    Usage(stderr);
    return 2;
  }

  Cluster cluster(args.hosts,
                  HostSpec{args.cpu, args.nic_mbps, args.nic_mbps, ""},
                  args.link_mbps);
  Catalog catalog{CostModel{}};

  WorkloadConfig wc;
  wc.num_base_streams = args.streams;
  wc.base_rate_mbps = args.rate_mbps;
  wc.zipf_s = args.zipf;
  wc.arities = args.arities;
  wc.num_queries = args.queries;
  wc.seed = args.seed;
  Result<Workload> workload = GenerateWorkload(wc, args.hosts, &catalog);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  std::vector<Event> trace;
  if (!args.trace_path.empty()) {
    Result<std::vector<Event>> loaded = LoadTrace(args.trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "trace: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*loaded);
  } else {
    TraceConfig tc;
    tc.num_events = args.events;
    tc.seed = args.seed;
    if (args.closed_loop) {
      // Drift slots become ground-truth rate directives, and the tick
      // weight rises so the self-measurement loop actually fires.
      tc.closed_loop = true;
      tc.tick_weight = std::max(tc.tick_weight, 0.5);
      tc.drift_weight = std::max(tc.drift_weight, 0.10);
      tc.min_drift_reports = std::max(tc.min_drift_reports, 3);
    }
    Result<std::vector<Event>> generated =
        GenerateTrace(tc, *workload, args.hosts, catalog);
    if (!generated.ok()) {
      std::fprintf(stderr, "trace: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*generated);
  }
  if (!args.save_trace_path.empty()) {
    const Status saved = SaveTrace(trace, args.save_trace_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save-trace: %s\n", saved.ToString().c_str());
      return 1;
    }
  }

  ServiceOptions options;
  options.planner.timeout_ms = args.timeout_ms;
  options.planner.solve_deadline_ms = args.solve_deadline_ms;
  if (args.max_nodes > 0) options.planner.max_nodes = args.max_nodes;
  options.replan.max_queries_per_round = args.replan_round;
  options.replan.workers = args.workers;
  options.replan.pipeline_depth = args.pipeline_depth;
  options.closed_loop = args.closed_loop;
  options.telemetry.mode = args.measure_mode;
  options.telemetry.measure_period = args.measure_period;
  options.telemetry.seed = args.rate_seed_set ? args.rate_seed : args.seed;
  obs::AuditJournal audit_journal;
  if (!args.audit_out_path.empty()) options.audit = &audit_journal;
  options.watchdog.event_stall_ms = args.stall_ms;
  options.watchdog.admit_budget_ms = args.budget_admit_ms;
  options.watchdog.solve_budget_ms = args.budget_solve_ms;
  options.watchdog.commit_budget_ms = args.budget_commit_ms;
  options.watchdog.barrier_budget_ms = args.budget_barrier_ms;
  options.watchdog.measure_budget_ms = args.budget_measure_ms;
  if (!args.trace_out_path.empty()) {
    obs::TraceRecorder::Options trace_options;
    trace_options.per_thread_capacity = args.trace_capacity;
    obs::TraceRecorder::Get().Enable(trace_options);
    obs::TraceRecorder::SetCurrentThreadName("loop");
  }

  PlanningService service(&cluster, &catalog, options);

  // Resume from a checkpoint before any event is enqueued (the restore
  // path insists on a fresh service). Every failure mode — missing
  // file, truncation, corruption, schema mismatch — is a quoted error
  // and exit 1, never an abort: a bad checkpoint must not take the
  // operator's shell session down with it.
  size_t resume_from = 0;
  if (!args.restore_path.empty()) {
    Result<std::string> blob = ReadFileToString(args.restore_path);
    if (!blob.ok()) {
      std::fprintf(stderr, "restore: cannot read \"%s\": %s\n",
                   args.restore_path.c_str(),
                   blob.status().ToString().c_str());
      return 1;
    }
    const Status restored = service.RestoreCheckpoint(*blob);
    if (!restored.ok()) {
      std::fprintf(stderr, "restore: \"%s\": %s\n", args.restore_path.c_str(),
                   restored.ToString().c_str());
      return 1;
    }
    // The checkpoint records how many events the crashed run consumed;
    // replay only the suffix. The trace must match the crashed run's —
    // same scenario flags, same --seed or --trace file.
    resume_from = static_cast<size_t>(service.stats().events);
    if (resume_from > trace.size()) {
      std::fprintf(stderr,
                   "restore: \"%s\" was taken after %zu events but the trace "
                   "has only %zu — wrong trace or scenario flags?\n",
                   args.restore_path.c_str(), resume_from, trace.size());
      return 1;
    }
  }
  for (size_t i = resume_from; i < trace.size(); ++i) {
    const Status st = service.Enqueue(trace[i]);
    if (!st.ok()) {
      std::fprintf(stderr, "enqueue: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const auto write_checkpoint = [&]() -> bool {
    Result<std::string> doc = service.ExportCheckpoint();
    if (!doc.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n",
                   doc.status().ToString().c_str());
      return false;
    }
    const Status written = WriteFileAtomic(args.checkpoint_out_path, *doc);
    if (!written.ok()) {
      std::fprintf(stderr, "checkpoint: %s\n", written.ToString().c_str());
      return false;
    }
    return true;
  };

  std::printf(
      "scenario: %d hosts (cpu %.2f, nic %.0f, link %.0f), %d base streams "
      "@ %.0f Mbps, zipf %.1f, seed %llu, workers %d\n",
      args.hosts, args.cpu, args.nic_mbps, args.link_mbps, args.streams,
      args.rate_mbps, args.zipf, static_cast<unsigned long long>(args.seed),
      args.workers);
  if (args.closed_loop) {
    std::printf(
        "closed loop: %s self-measurement every %d ticks, rate seed %llu\n",
        MeasureModeName(args.measure_mode), args.measure_period,
        static_cast<unsigned long long>(options.telemetry.seed));
  }
  if (resume_from > 0) {
    std::printf("restored from %s at event %zu (virtual t=%lld ms); "
                "replaying the remaining %zu of %zu events...\n\n",
                args.restore_path.c_str(), resume_from,
                static_cast<long long>(service.clock().now_ms()),
                trace.size() - resume_from, trace.size());
  } else {
    std::printf("replaying %zu events through the planning service...\n\n",
                trace.size());
  }

  // Periodic metrics exposition: a private registry fed from
  // ServiceStats by the publisher, sampled on virtual-time interval
  // boundaries so the series is replay-deterministic in shape (wall
  // latencies inside each sample still vary run to run).
  obs::MetricsRegistry metrics_registry;
  ServiceMetricsPublisher metrics_publisher(&metrics_registry);
  const bool metrics_series =
      !args.metrics_out_path.empty() && args.metrics_interval_ms > 0;
  std::string series_out;
  obs::MetricsSnapshot prev_snapshot;
  int64_t next_sample_ms = args.metrics_interval_ms;
  if (metrics_series && args.metrics_format == "json") {
    series_out += "{\"schema\":\"sqpr-metrics-series-v1\",\"interval_ms\":" +
                  std::to_string(args.metrics_interval_ms) + "}\n";
  }
  const auto sample_metrics = [&](int64_t t_ms) {
    metrics_publisher.Publish(service.stats());
    obs::MetricsSnapshot cum = metrics_registry.TakeSnapshot();
    if (args.metrics_format == "openmetrics") {
      series_out += cum.ToOpenMetrics({{"t_ms", std::to_string(t_ms)}});
    } else {
      const obs::MetricsSnapshot delta = cum.DeltaSince(prev_snapshot);
      series_out += "{\"t_ms\":" + std::to_string(t_ms) +
                    ",\"cum\":" + cum.ToJson() +
                    ",\"delta\":" + delta.ToJson() + "}\n";
    }
    prev_snapshot = std::move(cum);
  };

  // Per-event-kind latency aggregation.
  constexpr int kNumKinds = 7;
  double kind_ms[kNumKinds] = {};
  double kind_max_ms[kNumKinds] = {};
  int64_t kind_count[kNumKinds] = {};
  while (service.HasPendingEvents()) {
    Result<EventOutcome> outcome = service.Step();
    if (!outcome.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    if (metrics_series) {
      while (service.clock().now_ms() >= next_sample_ms) {
        sample_metrics(next_sample_ms);
        next_sample_ms += args.metrics_interval_ms;
      }
    }
    const int k = static_cast<int>(outcome->event.kind);
    kind_ms[k] += outcome->wall_ms;
    kind_max_ms[k] = std::max(kind_max_ms[k], outcome->wall_ms);
    ++kind_count[k];
    if (args.verbose) {
      std::printf("  %-70s %7.2f ms\n",
                  outcome->ToString(catalog).c_str(), outcome->wall_ms);
    }
    // Periodic checkpoint on the event-count cadence (counted by total
    // consumed events, so a restored run checkpoints at the same
    // boundaries as the run it resumed), then the injected crash point:
    // a SQPR_FAULT=event:n drill always crashes with the freshest
    // eligible checkpoint already renamed into place.
    if (args.checkpoint_every > 0 &&
        service.stats().events % args.checkpoint_every == 0) {
      if (!write_checkpoint()) return 1;
    }
    fault::MaybeCrash("event");
  }
  service.FinishInFlightRound();
  if (!args.checkpoint_out_path.empty()) {
    // Final checkpoint after the pipeline drains. Written before
    // FinalizeAudit so the checkpoint barrier's own audit records are
    // part of the journal like any other round's.
    if (!write_checkpoint()) return 1;
    std::printf("checkpoint written to %s\n",
                args.checkpoint_out_path.c_str());
  }
  service.FinalizeAudit();
  if (metrics_series) {
    // Final sample after the pipeline drains, so the series always ends
    // with the run's complete totals.
    sample_metrics(service.clock().now_ms());
  }

  const ServiceStats& stats = service.stats();
  std::printf("events consumed: %lld in %.1f ms virtual-final t=%lld ms\n",
              static_cast<long long>(stats.events), stats.total_wall_ms,
              static_cast<long long>(service.clock().now_ms()));
  std::printf("\nper-event-kind latency:\n");
  static const char* kKindNames[] = {"arrival",     "departure",
                                     "host-join",   "host-failure",
                                     "monitor",     "tick",
                                     "rate-directive"};
  static const EventKind kKinds[] = {
      EventKind::kQueryArrival, EventKind::kQueryDeparture,
      EventKind::kHostJoin,     EventKind::kHostFailure,
      EventKind::kMonitorReport, EventKind::kTick,
      EventKind::kRateDirective};
  for (int i = 0; i < kNumKinds; ++i) {
    const int k = static_cast<int>(kKinds[i]);
    if (kind_count[k] == 0) continue;
    std::printf("  %-14s %5lld events  avg %7.2f ms  max %7.2f ms\n",
                kKindNames[i], static_cast<long long>(kind_count[k]),
                kind_ms[k] / kind_count[k], kind_max_ms[k]);
  }

  std::printf("\nper-stage latency (loop-thread perspective):\n");
  const auto print_stage = [](const char* name, const obs::Histogram& s) {
    if (s.count() == 0) return;
    std::printf("  %-14s %6zu samples  avg %7.2f ms  max %7.2f ms\n", name,
                s.count(), s.mean(), s.max());
  };
  print_stage("admit", stats.admit_ms);
  print_stage("solve", stats.solve_ms);
  print_stage("commit", stats.commit_ms);
  print_stage("barrier-wait", stats.barrier_ms);
  if (stats.solve_ms.count() > 0) {
    std::printf(
        "  solver wall-time percentiles: p50 %.2f ms  p90 %.2f ms  "
        "p99 %.2f ms (%zu samples)\n",
        stats.solve_ms.Quantile(0.50), stats.solve_ms.Quantile(0.90),
        stats.solve_ms.Quantile(0.99), stats.solve_ms.count());
  }

  std::printf("\nadmission: %lld arrivals -> %lld admitted "
              "(%lld dedup, %lld cache fast-path), %lld rejected\n",
              static_cast<long long>(stats.arrivals),
              static_cast<long long>(stats.admitted),
              static_cast<long long>(stats.dedup_hits),
              static_cast<long long>(stats.cache_fast_path),
              static_cast<long long>(stats.rejected));
  std::printf("churn: %lld departures, %lld failures, %lld joins, "
              "%lld monitor reports\n",
              static_cast<long long>(stats.departures),
              static_cast<long long>(stats.host_failures),
              static_cast<long long>(stats.host_joins),
              static_cast<long long>(stats.monitor_reports));
  if (args.closed_loop || stats.rate_directives > 0) {
    std::printf("closed loop: %lld rate directives, %lld measurement ticks "
                "(%lld analytic), %lld auto re-plan rounds\n",
                static_cast<long long>(stats.rate_directives),
                static_cast<long long>(stats.measurement_ticks),
                static_cast<long long>(stats.analytic_ticks),
                static_cast<long long>(stats.auto_replan_rounds));
    if (stats.measure_ms.count() > 0) {
      std::printf("measurement cost: avg %.3f ms, max %.3f ms per "
                  "measuring tick (%s mode)\n",
                  stats.measure_ms.mean(), stats.measure_ms.max(),
                  MeasureModeName(args.measure_mode));
    }
  }
  if (args.solve_deadline_ms != 0 || stats.solver_deadline_breaches > 0 ||
      stats.catalog_exhausted > 0) {
    std::printf("degraded modes: %lld solver deadline breaches, %lld "
                "heuristic fallbacks, %lld catalog-exhausted rejections\n",
                static_cast<long long>(stats.solver_deadline_breaches),
                static_cast<long long>(stats.heuristic_fallbacks),
                static_cast<long long>(stats.catalog_exhausted));
  }
  std::printf("re-planning: %lld evictions, %lld rounds, "
              "%lld re-admitted, %lld rejected, %d still pending\n",
              static_cast<long long>(stats.evictions),
              static_cast<long long>(stats.replan_rounds),
              static_cast<long long>(stats.replanned_admitted),
              static_cast<long long>(stats.replanned_rejected),
              service.pending_replans());
  std::printf("speculative pipeline: %d workers, depth %d, %lld rounds "
              "dispatched, %lld commit conflicts re-solved inline, %lld "
              "rounds unwound at barriers, %lld arrival solves overlapped "
              "in-flight rounds\n",
              service.workers(), args.pipeline_depth,
              static_cast<long long>(stats.replan_dispatches),
              static_cast<long long>(stats.commit_conflicts),
              static_cast<long long>(stats.round_unwinds),
              static_cast<long long>(stats.overlapped_arrival_solves));
  if (stats.replan_dispatches > 0 && service.workers() > 0) {
    std::printf("snapshots: %lld bytes copied on the loop thread "
                "(%lld rebases across %lld dispatches)\n",
                static_cast<long long>(stats.snapshot_bytes_copied),
                static_cast<long long>(stats.snapshot_rebases),
                static_cast<long long>(stats.replan_dispatches));
  }
  if (args.stall_ms > 0 || args.budget_admit_ms > 0 ||
      args.budget_solve_ms > 0 || args.budget_commit_ms > 0 ||
      args.budget_barrier_ms > 0 || args.budget_measure_ms > 0) {
    std::printf("watchdog: %lld event-loop stalls (worst %.2f ms); budget "
                "breaches: admit %lld, solve %lld, commit %lld, barrier "
                "%lld, measure %lld\n",
                static_cast<long long>(stats.loop_stalls),
                stats.worst_stall_ms,
                static_cast<long long>(stats.admit_budget_breaches),
                static_cast<long long>(stats.solve_budget_breaches),
                static_cast<long long>(stats.commit_budget_breaches),
                static_cast<long long>(stats.barrier_budget_breaches),
                static_cast<long long>(stats.measure_budget_breaches));
  }

  const PlanCache& cache = service.plan_cache();
  std::printf("plan cache: %lld exact hits, %lld partial hits, "
              "%lld misses (%d streams indexed)\n",
              static_cast<long long>(cache.exact_hits()),
              static_cast<long long>(cache.partial_hits()),
              static_cast<long long>(cache.misses()), cache.num_indexed());
  std::printf("plan cache maintenance: %lld incremental delta updates, "
              "%lld full rebuilds, %lld no-op skips\n",
              static_cast<long long>(stats.cache_delta_updates),
              static_cast<long long>(cache.rebuilds()),
              static_cast<long long>(cache.noop_skips()));
  std::printf("incremental solves: %lld model patches, %lld rebuilds, "
              "%lld warm starts, %lld stale bases discarded\n",
              static_cast<long long>(stats.model_patches),
              static_cast<long long>(stats.model_rebuilds),
              static_cast<long long>(stats.warm_starts),
              static_cast<long long>(stats.basis_discards));

  const Deployment& dep = service.deployment();
  std::printf("\nfinal deployment: %zu queries served, %d operators, "
              "%d flows\n",
              service.admitted_queries().size(), dep.num_placed_operators(),
              dep.num_flows());
  const Status audit = dep.Validate();
  std::printf("deployment audit: %s\n", audit.ToString().c_str());
  if (!audit.ok()) return 1;
  if (cache.hits() == 0) {
    std::fprintf(stderr, "warning: no plan-cache hits in this trace\n");
  }

  if (!args.trace_out_path.empty()) {
    const Status written =
        obs::TraceRecorder::Get().WriteChromeTrace(args.trace_out_path);
    if (!written.ok()) {
      std::fprintf(stderr, "trace-out: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nflight-recorder trace written to %s\n",
                args.trace_out_path.c_str());
  }
  const auto write_text_file = [](const std::string& path,
                                  const std::string& text,
                                  const char* what) -> bool {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot open %s\n", what, path.c_str());
      return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
  };
  if (!args.metrics_out_path.empty()) {
    if (metrics_series) {
      if (!write_text_file(args.metrics_out_path, series_out, "metrics-out")) {
        return 1;
      }
      std::printf("metrics series (%s, every %lld virtual ms) written to "
                  "%s\n", args.metrics_format.c_str(),
                  static_cast<long long>(args.metrics_interval_ms),
                  args.metrics_out_path.c_str());
    } else {
      // One exposition at exit. The publisher feeds the full
      // ServiceStats — every counter and stage histogram — under stable
      // service.* names, so the snapshot schema does not depend on
      // which code paths ran.
      metrics_publisher.Publish(stats);
      const std::string text =
          args.metrics_format == "openmetrics"
              ? metrics_registry.TakeSnapshot().ToOpenMetrics({})
              : metrics_registry.ToJson();
      if (!write_text_file(args.metrics_out_path, text, "metrics-out")) {
        return 1;
      }
      std::printf("metrics snapshot (%s) written to %s\n",
                  args.metrics_format.c_str(), args.metrics_out_path.c_str());
    }
  }
  if (!args.stats_json_path.empty()) {
    obs::MetricsRegistry stats_registry;
    ServiceMetricsPublisher stats_publisher(&stats_registry);
    stats_publisher.Publish(stats);
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"schema\":\"sqpr-service-stats-v1\",\"workers\":%d,"
                  "\"pipeline_depth\":%d,\"final_t_ms\":%lld,"
                  "\"total_wall_ms\":%.6g,\"max_event_ms\":%.6g,"
                  "\"worst_stall_ms\":%.6g,\"stats\":",
                  service.workers(), args.pipeline_depth,
                  static_cast<long long>(service.clock().now_ms()),
                  stats.total_wall_ms, stats.max_event_ms,
                  stats.worst_stall_ms);
    const std::string text =
        head + stats_registry.TakeSnapshot().ToJson() + "}\n";
    if (!write_text_file(args.stats_json_path, text, "stats-json")) return 1;
    std::printf("service stats written to %s\n", args.stats_json_path.c_str());
  }
  if (!args.audit_out_path.empty()) {
    const Status written =
        audit_journal.WriteFile(args.audit_out_path, args.audit_canonical);
    if (!written.ok()) {
      std::fprintf(stderr, "audit-out: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("audit journal written to %s (%zu records, %zu canonical%s)"
                "\n", args.audit_out_path.c_str(), audit_journal.size(),
                audit_journal.canonical_size(),
                args.audit_canonical ? ", canonical rendering" : "");
  }
  return 0;
}
