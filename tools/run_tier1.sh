#!/usr/bin/env bash
# Tier-1 verification wrapper: configure, build, and run the full ctest
# suite — the same sequence CI runs (see .github/workflows/ci.yml).
#
# Usage:
#   tools/run_tier1.sh [build-dir]
#
# Environment:
#   CC / CXX          compiler override (e.g. CC=clang CXX=clang++)
#   CMAKE_BUILD_TYPE  defaults to RelWithDebInfo
#   CTEST_PARALLEL    ctest -j value (defaults to nproc)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
build_type="${CMAKE_BUILD_TYPE:-RelWithDebInfo}"
jobs="${CTEST_PARALLEL:-$(nproc)}"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE="${build_type}"
cmake --build "${build_dir}" -j "${jobs}"
ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
