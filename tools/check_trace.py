#!/usr/bin/env python3
"""Validates a flight-recorder trace (Chrome trace_event JSON emitted by
TraceRecorder::ChromeTraceJson, schema sqpr-trace-v1) and — when the
trace contains re-planning rounds — checks that named spans attribute
the required fraction of each round's wall time.

Usage:
  tools/check_trace.py TRACE.json[.gz] [--min-round-coverage 0.9]
                       [--require-rounds]

Checks (all fatal):
  * JSON parses; top level has traceEvents (list) and otherData with
    schema == "sqpr-trace-v1" plus emitted_spans / dropped_spans /
    threads counters.
  * Every event is an "M" thread_name record (args.name present) or an
    "X" complete span (name, cat, numeric ts >= 0, numeric dur >= 0,
    integer tid named by some "M" record).
  * Span names are '/'-separated taxonomy paths whose first segment
    matches the event's cat.
  * Re-planning-round attribution: a round runs from its
    service/round.dispatch start to the end of the span that retires it
    — service/round.commit at its pinned commit point, or
    service/round.unwind when a barrier retires a speculative round
    early. Pipelined rounds overlap (up to pipeline_depth in flight),
    so spans are matched by their "round" id arg, falling back to
    positional dispatch/commit pairing for traces predating the arg.
    The union of all named spans across all threads, clipped to the
    round's window, must cover >= --min-round-coverage of it: "explain
    every millisecond" is gated here, not eyeballed in Perfetto.

Exit 0 on success, 1 with a message on any failure.
"""

import argparse
import gzip
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    opener = gzip.open if path.endswith(".gz") else open
    try:
        with opener(path, "rt") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def union_length(intervals, lo, hi):
    """Total length of the union of [start, end) intervals clipped to
    [lo, hi)."""
    clipped = sorted(
        (max(s, lo), min(e, hi)) for s, e in intervals if e > lo and s < hi
    )
    total = 0.0
    cur_lo = None
    cur_hi = None
    for s, e in clipped:
        if cur_hi is None or s > cur_hi:
            if cur_hi is not None:
                total += cur_hi - cur_lo
            cur_lo, cur_hi = s, e
        else:
            cur_hi = max(cur_hi, e)
    if cur_hi is not None:
        total += cur_hi - cur_lo
    return total


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-round-coverage", type=float, default=0.9)
    ap.add_argument(
        "--require-rounds",
        action="store_true",
        help="fail when the trace contains no re-planning rounds",
    )
    args = ap.parse_args()

    data = load(args.trace)
    events = data.get("traceEvents")
    if not isinstance(events, list):
        fail("traceEvents missing or not a list")
    other = data.get("otherData")
    if not isinstance(other, dict):
        fail("otherData missing")
    if other.get("schema") != "sqpr-trace-v1":
        fail(f"schema is {other.get('schema')!r}, want 'sqpr-trace-v1'")
    for key in ("emitted_spans", "dropped_spans", "threads"):
        if not isinstance(other.get(key), int):
            fail(f"otherData.{key} missing or not an integer")
    # Per-thread ring statistics (optional: traces written before the
    # recorder exported them lack the key). When present they must be
    # coherent with the totals — a drop hidden in one thread's ring is
    # exactly what the gate output needs to surface.
    per_thread = other.get("per_thread")
    if per_thread is not None:
        if not isinstance(per_thread, list):
            fail("otherData.per_thread is not a list")
        for i, t in enumerate(per_thread):
            if not isinstance(t, dict) or not isinstance(t.get("name"), str):
                fail(f"otherData.per_thread[{i}]: missing thread name")
            for key in ("emitted", "dropped"):
                if not isinstance(t.get(key), int) or t[key] < 0:
                    fail(
                        f"otherData.per_thread[{i}] ({t.get('name')!r}): "
                        f"{key} missing or not a non-negative integer"
                    )
        for key, total in (
            ("emitted", other["emitted_spans"]),
            ("dropped", other["dropped_spans"]),
        ):
            s = sum(t[key] for t in per_thread)
            if s != total:
                fail(
                    f"otherData.per_thread {key} counts sum to {s}, "
                    f"but {key}_spans says {total}"
                )

    named_tids = {}
    spans = []
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") != "thread_name":
                fail(f"event {i}: unexpected metadata record {ev.get('name')!r}")
            name = ev.get("args", {}).get("name")
            if not isinstance(name, str) or not name:
                fail(f"event {i}: thread_name metadata without args.name")
            named_tids[ev.get("tid")] = name
        elif ph == "X":
            name, cat = ev.get("name"), ev.get("cat")
            ts, dur, tid = ev.get("ts"), ev.get("dur"), ev.get("tid")
            if not isinstance(name, str) or not name:
                fail(f"event {i}: span without a name")
            if not isinstance(cat, str) or name.split("/")[0] != cat:
                fail(f"event {i}: cat {cat!r} != first segment of {name!r}")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"event {i} ({name}): bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i} ({name}): bad dur {dur!r}")
            if not isinstance(tid, int):
                fail(f"event {i} ({name}): bad tid {tid!r}")
            span_args = ev.get("args", {})
            if not isinstance(span_args, dict):
                fail(f"event {i} ({name}): args is not an object")
            spans.append(
                (name, tid, float(ts), float(ts) + float(dur), span_args)
            )
        else:
            fail(f"event {i}: unknown ph {ph!r}")

    for name, tid, _, _, _ in spans:
        if tid not in named_tids:
            fail(f"span {name}: tid {tid} has no thread_name metadata")

    # --- re-planning-round attribution ---------------------------------
    # Up to pipeline_depth rounds overlap, so dispatches are matched to
    # the span that retires the round — commit (the pinned commit point)
    # or unwind (a barrier retired it early) — by the "round" id arg.
    def spans_named(span_name):
        return [
            (a.get("round"), s, e)
            for n, _, s, e, a in spans
            if n == span_name
        ]

    dispatches = spans_named("service/round.dispatch")
    retires = spans_named("service/round.commit") + spans_named(
        "service/round.unwind"
    )
    if args.require_rounds and not dispatches:
        fail("trace contains no service/round.dispatch spans")

    pairs = []  # (round key, dispatch start, retire start, retire end)
    if all(isinstance(r, int) for r, _, _ in dispatches + retires):
        retire_by_id = {r: (s, e) for r, s, e in retires}
        if len(retire_by_id) != len(retires):
            fail("duplicate round ids among commit/unwind spans")
        unmatched = len(retires) - sum(
            1 for r, _, _ in dispatches if r in retire_by_id
        )
        for r, d_start, _ in dispatches:
            if r not in retire_by_id:
                # The ring dropped this round's retire span (rounds in
                # flight at the end retire via FinishInFlightRound, so
                # absence means overwrite, not leakage).
                continue
            pairs.append((r, d_start) + retire_by_id[r])
        dropped = len(dispatches) - len(pairs)
        if dropped or unmatched:
            print(
                f"check_trace: note: {dropped} dispatches and "
                f"{unmatched} commits/unwinds retained without their "
                f"pair; checking {len(pairs)} complete rounds"
            )
    else:
        # Trace predates the round-id arg: at most one round was in
        # flight, so commit k follows dispatch k in time.
        old_dispatches = sorted((s, e) for _, s, e in dispatches)
        old_commits = sorted(
            (s, e) for r, s, e in spans_named("service/round.commit")
        )
        if len(old_dispatches) != len(old_commits):
            n = min(len(old_dispatches), len(old_commits))
            print(
                f"check_trace: note: {len(old_dispatches)} dispatches vs "
                f"{len(old_commits)} commits retained; checking {n} pairs"
            )
            old_dispatches, old_commits = old_dispatches[-n:], old_commits[-n:]
        pairs = [
            (k, d[0], c[0], c[1])
            for k, (d, c) in enumerate(zip(old_dispatches, old_commits))
        ]

    intervals = [(s, e) for _, _, s, e, _ in spans]
    worst = None
    for k, d_start, r_start, r_end in pairs:
        if r_end <= d_start or r_start < d_start:
            fail(f"round {k}: commit/unwind does not follow its dispatch")
        window = r_end - d_start
        if window <= 0:
            continue
        coverage = union_length(intervals, d_start, r_end) / window
        if worst is None or coverage < worst[1]:
            worst = (k, coverage)
        if coverage < args.min_round_coverage:
            fail(
                f"round {k}: named spans cover {coverage:.1%} of the "
                f"{window / 1000.0:.2f} ms round window "
                f"(< {args.min_round_coverage:.0%})"
            )

    rounds = len(pairs)
    summary = (
        f"{rounds} rounds, worst coverage {worst[1]:.1%}"
        if worst is not None
        else "no complete rounds retained"
    )
    if per_thread is not None:
        dropped_detail = ", ".join(
            f"{t['name']} {t['dropped']}/{t['emitted']}"
            for t in per_thread
            if t["dropped"] > 0
        )
        dropped_str = (
            f"{other['dropped_spans']} dropped ({dropped_detail})"
            if dropped_detail
            else f"0 dropped on all {len(per_thread)} threads"
        )
    else:
        dropped_str = f"{other['dropped_spans']} dropped"
    print(
        f"check_trace: OK: {len(spans)} spans on {len(named_tids)} threads, "
        f"{dropped_str}; {summary}"
    )


if __name__ == "__main__":
    main()
