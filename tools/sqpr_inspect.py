#!/usr/bin/env python3
"""Per-query timeline inspector over the three observability artifacts.

Joins a decision audit journal (sqpr-audit-v1 JSONL, the source of
truth), an optional flight-recorder trace (Chrome trace_event JSON,
sqpr-trace-v1) and an optional periodic metrics series
(sqpr-metrics-series-v1 JSONL) produced by the same replay into:

  * per-query lifecycle timelines (--query ID): every decision that
    touched the query, in commit order, with reason codes and wall
    latencies (full-rendering journals) or virtual times only
    (canonical renderings);
  * per-round wall-time attribution (--rounds): each committed
    re-planning round's sequence number, member queries and outcomes,
    joined — via the round's dispatch id — to its trace spans, so the
    round's window is broken down by span name;
  * a lifecycle completeness gate (--require-complete): the journal's
    records are replayed through a query state machine and the final
    states must exactly reproduce the journal's own close.admitted /
    close.pending lists — every query the service ever admitted,
    rejected, evicted or queued is accounted for, none dangle.

Usage:
  tools/sqpr_inspect.py AUDIT.jsonl[.gz] [--trace TRACE.json[.gz]]
      [--metrics SERIES.jsonl[.gz]] [--query ID] [--rounds]
      [--require-complete]

Exit 0 on success; 1 when the journal is malformed, an artifact
disagrees with the journal, or --require-complete finds an unclosed
lifecycle.
"""

import argparse
import gzip
import json
import sys


def fail(msg):
    print(f"sqpr_inspect: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def opener(path):
    return gzip.open(path, "rt") if path.endswith(".gz") else open(path)


# Audit kinds that move a query through its lifecycle. rate.directive
# also carries a stream id, but that id names a *base* stream (the
# trajectory's subject), not a query, so it is deliberately absent.
ADMIT_KINDS = {"admit.solve", "admit.cache"}
REJECT_KINDS = {"reject.capacity", "reject.error"}
DEPART_KINDS = {"depart.served", "depart.unknown"}
EVICT_KINDS = {"evict.host_failure", "evict.drift"}
LIFECYCLE_KINDS = (
    ADMIT_KINDS
    | REJECT_KINDS
    | DEPART_KINDS
    | EVICT_KINDS
    | {
        "admit.dedup",
        "replan.enqueue",
        "replan.admit",
        "replan.reject",
        "replan.fail",
    }
)
SPECULATIVE_QUERY_KINDS = {
    "replan.discard",
    "replan.requeue",
    "replan.conflict",
}


def load_audit(path):
    """Parses the journal; returns (canonical_rendering, records)."""
    records = []
    canonical = None
    with opener(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: bad JSON: {e}")
            if lineno == 1:
                if rec.get("schema") != "sqpr-audit-v1":
                    fail(
                        f"{path}: schema is {rec.get('schema')!r}, "
                        f"want 'sqpr-audit-v1'"
                    )
                canonical = rec.get("canonical")
                if not isinstance(canonical, bool):
                    fail(f"{path}: header lacks a boolean 'canonical'")
                continue
            if ("seq" in rec) == ("sseq" in rec):
                fail(
                    f"{path}:{lineno}: record needs exactly one of "
                    f"seq (canonical) / sseq (speculative)"
                )
            if not isinstance(rec.get("kind"), str):
                fail(f"{path}:{lineno}: record without a kind")
            if not isinstance(rec.get("t_ms"), int):
                fail(f"{path}:{lineno}: record without an integer t_ms")
            records.append(rec)
    if canonical is None:
        fail(f"{path}: empty journal (no header line)")
    # Both strata must number contiguously from 0 — a gap means records
    # were filtered out by something other than the canonical renderer.
    for key in ("seq", "sseq"):
        seqs = [r[key] for r in records if key in r]
        if seqs != list(range(len(seqs))):
            fail(f"{path}: {key} numbering is not contiguous from 0")
    if canonical and any("sseq" in r for r in records):
        fail(f"{path}: canonical rendering contains speculative records")
    return canonical, records


class Lifecycles:
    """Replays canonical records into per-query states + histories.

    "admitted" (deployed) and "pending" (queued for a re-planning
    round) are orthogonal: a host join retries remembered-rejected
    queries, so a query re-admitted by a fresh arrival can be enqueued
    again while still deployed — it then legitimately appears in both
    close.admitted and close.pending.
    """

    def __init__(self):
        self.admitted = set()
        self.pending = set()
        # Evicted queries the service has not re-queued yet. Eviction
        # always re-queues in the same handler, so anything still here
        # at close is a gate failure. An evicted query that was already
        # pending never gets a fresh replan.enqueue record (the
        # scheduler deduplicates), hence the pending check on entry.
        self.evicted = set()
        self.history = {}  # query -> [record, ...] (speculative included)
        self.close_admitted = None
        self.close_pending = None
        self.journal_close = None
        self.kind_counts = {}

    def note(self, query, rec):
        self.history.setdefault(query, []).append(rec)

    def apply(self, rec):
        kind = rec["kind"]
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        if "sseq" in rec:
            if kind in SPECULATIVE_QUERY_KINDS and "query" in rec:
                self.note(rec["query"], rec)
            return
        if kind == "close.admitted":
            self.close_admitted = rec.get("streams", [])
            return
        if kind == "close.pending":
            self.close_pending = rec.get("streams", [])
            return
        if kind == "journal.close":
            self.journal_close = rec
            return
        if kind not in LIFECYCLE_KINDS or "query" not in rec:
            return
        q = rec["query"]
        self.note(q, rec)
        if kind in ADMIT_KINDS:
            self.admitted.add(q)
        elif kind == "replan.admit":
            self.admitted.add(q)
            self.pending.discard(q)
        elif kind in ("replan.reject", "replan.fail"):
            # A deployed member of a round always resolves to
            # replan.admit (already-served commits as admitted), so a
            # reject implies the query is not deployed.
            self.admitted.discard(q)
            self.pending.discard(q)
        elif kind in REJECT_KINDS:
            self.admitted.discard(q)
        elif kind in DEPART_KINDS:
            # Departure discards any queued retry too (the service
            # calls the scheduler discard even for depart.unknown).
            self.admitted.discard(q)
            self.pending.discard(q)
            self.evicted.discard(q)
        elif kind in EVICT_KINDS:
            self.admitted.discard(q)
            if q not in self.pending:
                self.evicted.add(q)
        elif kind == "replan.enqueue":
            self.pending.add(q)
            self.evicted.discard(q)
        # admit.dedup: an arrival for an already-served query — history
        # only, the state stays admitted.

    def final_state(self, q):
        flags = []
        if q in self.admitted:
            flags.append("admitted")
        if q in self.pending:
            flags.append("pending")
        if flags:
            return "+".join(flags)
        last = next(
            (
                r["kind"]
                for r in reversed(self.history.get(q, []))
                if "seq" in r
            ),
            None,
        )
        return "departed" if last in DEPART_KINDS else "rejected"

    def completeness_errors(self):
        errs = []
        if self.journal_close is None:
            errs.append("journal has no journal.close record")
        if self.close_admitted is None or self.close_pending is None:
            errs.append("journal lacks close.admitted / close.pending")
            return errs
        if self.evicted:
            errs.append(
                f"{len(self.evicted)} queries evicted but never "
                f"re-queued: {sorted(self.evicted)[:10]}"
            )
        for name, replayed, close in (
            ("close.admitted", self.admitted, self.close_admitted),
            ("close.pending", self.pending, self.close_pending),
        ):
            if replayed != set(close):
                missing = sorted(set(close) - replayed)[:10]
                extra = sorted(replayed - set(close))[:10]
                errs.append(
                    f"replayed set disagrees with {name} "
                    f"(missing {missing}, extra {extra})"
                )
        return errs


def load_trace_rounds(path):
    """Returns ({dispatch id: (window start, window end)}, spans)."""
    with opener(path) as f:
        try:
            data = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"cannot parse {path}: {e}")
    spans = []
    for ev in data.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        ts, dur = float(ev.get("ts", 0)), float(ev.get("dur", 0))
        spans.append((ev.get("name"), ts, ts + dur, ev.get("args", {})))
    windows = {}
    for name, s, e, a in spans:
        rid = a.get("round")
        if not isinstance(rid, int):
            continue
        if name == "service/round.dispatch":
            windows.setdefault(rid, [None, None])[0] = s
        elif name in ("service/round.commit", "service/round.unwind"):
            windows.setdefault(rid, [None, None])[1] = e
    complete = {
        rid: (s, e)
        for rid, (s, e) in windows.items()
        if s is not None and e is not None
    }
    return complete, spans


def attribute_window(spans, lo, hi, top=5):
    """Per-span-name time inside [lo, hi) us, largest first."""
    by_name = {}
    for name, s, e, _ in spans:
        s, e = max(s, lo), min(e, hi)
        if e > s:
            by_name[name] = by_name.get(name, 0.0) + (e - s)
    ranked = sorted(by_name.items(), key=lambda kv: -kv[1])
    return ranked[:top]


def load_metrics_series(path):
    header = None
    samples = []
    with opener(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: bad JSON: {e}")
            if lineno == 1:
                if rec.get("schema") != "sqpr-metrics-series-v1":
                    fail(
                        f"{path}: schema is {rec.get('schema')!r}, "
                        f"want 'sqpr-metrics-series-v1'"
                    )
                header = rec
                continue
            for key in ("t_ms", "cum", "delta"):
                if key not in rec:
                    fail(f"{path}:{lineno}: series sample without {key}")
            samples.append(rec)
    if header is None:
        fail(f"{path}: empty series (no header line)")
    if samples != sorted(samples, key=lambda r: r["t_ms"]):
        fail(f"{path}: sample t_ms not monotone")
    return header, samples


def fmt_wall(rec):
    wall = rec.get("wall", {})
    parts = []
    if "solve_ms" in wall:
        parts.append(f"solve {wall['solve_ms']:.2f} ms")
    if "commit_ms" in wall:
        parts.append(f"commit {wall['commit_ms']:.2f} ms")
    if "dispatch" in wall:
        parts.append(f"dispatch #{wall['dispatch']}")
    return f"  [{', '.join(parts)}]" if parts else ""


def main():
    ap = argparse.ArgumentParser(
        description="inspect SQPR observability artifacts"
    )
    ap.add_argument("audit", help="sqpr-audit-v1 JSONL journal")
    ap.add_argument("--trace", help="sqpr-trace-v1 Chrome trace of the run")
    ap.add_argument(
        "--metrics", help="sqpr-metrics-series-v1 JSONL of the run"
    )
    ap.add_argument("--query", type=int, help="print one query's timeline")
    ap.add_argument(
        "--rounds",
        action="store_true",
        help="print per-round outcome and wall-time attribution",
    )
    ap.add_argument(
        "--require-complete",
        action="store_true",
        help="fail unless every query lifecycle is closed",
    )
    args = ap.parse_args()

    canonical, records = load_audit(args.audit)
    life = Lifecycles()
    for rec in records:
        life.apply(rec)

    n_queries = len(life.history)
    states = {}
    for q in life.history:
        s = life.final_state(q)
        states[s] = states.get(s, 0) + 1
    print(
        f"audit: {len(records)} records "
        f"({'canonical rendering' if canonical else 'full rendering'}), "
        f"{n_queries} distinct queries"
    )
    print(
        "  final states: "
        + ", ".join(f"{k} {v}" for k, v in sorted(states.items()))
    )
    top_kinds = sorted(life.kind_counts.items(), key=lambda kv: -kv[1])
    print(
        "  decisions: "
        + ", ".join(f"{k} {v}" for k, v in top_kinds)
    )

    errors = life.completeness_errors()

    if args.metrics:
        header, samples = load_metrics_series(args.metrics)
        final = samples[-1]["cum"]["counters"] if samples else {}
        print(
            f"metrics: {len(samples)} samples every "
            f"{header.get('interval_ms')} virtual ms, final t_ms "
            f"{samples[-1]['t_ms'] if samples else 0}"
        )
        # Cross-artifact joins: the series' final cumulative counters
        # must agree with what the journal recorded decision by
        # decision (all three counters are worker/depth-invariant).
        expect = {
            "service.events": (life.journal_close or {}).get("detail"),
            "service.admitted": sum(
                life.kind_counts.get(k, 0)
                for k in ("admit.solve", "admit.cache", "admit.dedup")
            ),
            "service.rejected": sum(
                life.kind_counts.get(k, 0)
                for k in ("reject.capacity", "reject.error")
            ),
        }
        for name, want in expect.items():
            got = final.get(name)
            if want is not None and got != want:
                errors.append(
                    f"metrics series {name}={got} disagrees with the "
                    f"audit journal's {want}"
                )
        if samples and not errors:
            print("  final counters agree with the audit journal")

    trace_windows, trace_spans = ({}, [])
    if args.trace:
        trace_windows, trace_spans = load_trace_rounds(args.trace)
        print(
            f"trace: {len(trace_spans)} spans, "
            f"{len(trace_windows)} complete round windows"
        )

    if args.query is not None:
        hist = life.history.get(args.query)
        if hist is None:
            fail(f"query {args.query} never appears in the journal")
        print(f"\ntimeline for query {args.query} "
              f"(final state: {life.final_state(args.query)}):")
        for rec in hist:
            spec = "~" if "sseq" in rec else " "
            extra = ""
            if "round" in rec:
                extra += f"  round {rec['round']}"
            if "host" in rec:
                extra += f"  host {rec['host']}"
            print(
                f"  {spec} t={rec['t_ms']:>8} ms  {rec['kind']:<18}"
                f"{extra}{fmt_wall(rec)}"
            )

    if args.rounds:
        rounds = [
            r
            for r in records
            if "seq" in r and r["kind"] == "replan.round"
        ]
        outcomes = {}
        for r in records:
            if "seq" in r and r["kind"] in (
                "replan.admit",
                "replan.reject",
                "replan.fail",
            ):
                outcomes.setdefault(r.get("round"), []).append(r)
        print(f"\n{len(rounds)} committed re-planning rounds:")
        for r in rounds:
            outs = outcomes.get(r.get("round"), [])
            admitted = sum(1 for o in outs if o["kind"] == "replan.admit")
            line = (
                f"  round {r.get('round'):>3}  t={r['t_ms']:>8} ms  "
                f"{r.get('detail', 0)} queries, {admitted} re-admitted"
            )
            wall = r.get("wall", {})
            solve_ms = sum(
                o.get("wall", {}).get("solve_ms", 0.0) for o in outs
            )
            if wall or solve_ms:
                line += (
                    f"  (barrier {wall.get('commit_ms', 0.0):.2f} ms, "
                    f"solves {solve_ms:.2f} ms)"
                )
            dispatch = wall.get("dispatch")
            if dispatch in trace_windows:
                lo, hi = trace_windows[dispatch]
                line += f"  window {(hi - lo) / 1000.0:.2f} ms:"
                print(line)
                for name, us in attribute_window(trace_spans, lo, hi):
                    print(f"        {name:<28} {us / 1000.0:>9.2f} ms")
            else:
                print(line)

    if errors:
        for e in errors:
            print(f"sqpr_inspect: lifecycle: {e}", file=sys.stderr)
        if args.require_complete:
            fail(f"{len(errors)} lifecycle completeness errors")
        print(
            f"sqpr_inspect: WARNING: {len(errors)} completeness errors "
            f"(pass --require-complete to gate)"
        )
    else:
        print(
            f"lifecycle: complete — all {n_queries} queries accounted "
            f"for at close"
        )


if __name__ == "__main__":
    main()
