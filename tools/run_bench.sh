#!/usr/bin/env bash
# Regenerates the machine-readable service-bench baseline.
#
#   tools/run_bench.sh [output.json]
#
# Builds bench_service_churn in ./build (override with BUILD_DIR) and
# runs it with --json, writing BENCH_service.json by default. The file
# is the checked-in perf trajectory: re-run after perf-relevant changes
# and commit the diff alongside them, so wins land as numbers and
# regressions as reviewable diffs. The bench's shape checks gate the
# run (exit 1 on failure); absolute timings are machine-dependent and
# meaningful only relative to earlier records from comparable hardware.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_service.json}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_service_churn >/dev/null

"$BUILD_DIR/bench_service_churn" --json "$OUT"
