#!/usr/bin/env bash
# Regenerates the machine-readable service-bench baseline and the
# committed flight-recorder trace.
#
#   tools/run_bench.sh [output.json] [trace.json.gz]
#
# Builds bench_service_churn in ./build (override with BUILD_DIR) and
# runs it with --json, writing BENCH_service.json by default. The file
# is the checked-in perf trajectory: re-run after perf-relevant changes
# and commit the diff alongside them, so wins land as numbers and
# regressions as reviewable diffs. The bench's shape checks gate the
# run (exit 1 on failure); absolute timings are machine-dependent and
# meaningful only relative to earlier records from comparable hardware.
#
# The second output (default TRACE_drift_w4.json.gz) is the
# flight-recorder capture of the drift-heavy workers=4 replay,
# validated by tools/check_trace.py (schema + >= 90% of every
# re-planning round's wall time attributed to named spans,
# docs/ARCHITECTURE.md §7) and gzipped for commit.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_service.json}
TRACE_OUT=${2:-TRACE_drift_w4.json.gz}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" --target bench_service_churn >/dev/null

TRACE_RAW=$(mktemp /tmp/sqpr_trace.XXXXXX.json)
trap 'rm -f "$TRACE_RAW"' EXIT

"$BUILD_DIR/bench_service_churn" --json "$OUT" --trace-out "$TRACE_RAW"

python3 tools/check_trace.py "$TRACE_RAW" \
  --min-round-coverage 0.9 --require-rounds

gzip -9 -c "$TRACE_RAW" > "$TRACE_OUT"
echo "wrote $OUT and $TRACE_OUT ($(stat -c%s "$TRACE_OUT") bytes gzipped)"
