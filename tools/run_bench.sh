#!/usr/bin/env bash
# Regenerates the machine-readable bench baselines and the committed
# flight-recorder trace.
#
#   tools/run_bench.sh [output.json] [trace.json.gz] [micro.json]
#
# Builds bench_service_churn and bench_solver_micro in ./build
# (override with BUILD_DIR) and runs them with --json, writing
# BENCH_service.json and BENCH_solver_micro.json by default. The files
# are the checked-in perf trajectory: re-run after perf-relevant
# changes and commit the diff alongside them, so wins land as numbers
# and regressions as reviewable diffs. BENCH_service.json includes a
# checkpoint-overhead record (export / atomic-write / restore timings,
# docs/ARCHITECTURE.md §9) next to the throughput scenarios. The benches' shape checks gate
# the run (exit 1 on failure); absolute timings are machine-dependent
# and meaningful only relative to earlier records from comparable
# hardware.
#
# The second output (default TRACE_drift_w4.json.gz) is the
# flight-recorder capture of the drift-heavy workers=4 replay,
# validated by tools/check_trace.py (schema + >= 90% of every
# re-planning round's wall time attributed to named spans,
# docs/ARCHITECTURE.md §7) and gzipped for commit.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
OUT=${1:-BENCH_service.json}
TRACE_OUT=${2:-TRACE_drift_w4.json.gz}
MICRO_OUT=${3:-BENCH_solver_micro.json}

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target bench_service_churn --target bench_solver_micro >/dev/null

TRACE_RAW=$(mktemp /tmp/sqpr_trace.XXXXXX.json)
AUDIT_RAW=$(mktemp /tmp/sqpr_audit.XXXXXX.jsonl)
SERIES_RAW=$(mktemp /tmp/sqpr_series.XXXXXX.jsonl)
trap 'rm -f "$TRACE_RAW" "$AUDIT_RAW" "$SERIES_RAW"' EXIT

"$BUILD_DIR/bench_service_churn" --json "$OUT" --trace-out "$TRACE_RAW" \
  --audit-out "$AUDIT_RAW" --metrics-series-out "$SERIES_RAW"

python3 tools/check_trace.py "$TRACE_RAW" \
  --min-round-coverage 0.9 --require-rounds

# The instrumented replay's decision audit journal and metrics series
# must join into complete per-query lifecycles (same gate as CI).
python3 tools/sqpr_inspect.py "$AUDIT_RAW" --trace "$TRACE_RAW" \
  --metrics "$SERIES_RAW" --require-complete

gzip -9 -c "$TRACE_RAW" > "$TRACE_OUT"

"$BUILD_DIR/bench_solver_micro" --json "$MICRO_OUT"

echo "wrote $OUT, $MICRO_OUT and $TRACE_OUT" \
  "($(stat -c%s "$TRACE_OUT") bytes gzipped)"
