// Fig. 4(c): efficiency with overlap — satisfiable queries vs the Zipf
// skew of base-stream popularity, for three base-stream pool sizes.
// Higher skew and smaller pools both increase inter-query overlap, which
// SQPR converts into admissions through reuse.
//
// Paper setup: Zipf 0-2, pools of 100/500/1000 base streams. Scaled:
// Zipf 0-2, pools of 16/48/96, 70 queries, 60 ms timeout.
// Expected shape: admissions increase with skew; at fixed skew, the
// smaller pool admits at least as many as the bigger one.

#include <vector>

#include "bench/bench_util.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  PrintHeader("Fig 4(c)", "satisfiable queries vs Zipf overlap factor", 1);

  const std::vector<double> zipfs = {0.0, 0.5, 1.0, 1.5, 2.0};
  const std::vector<int> pools = {16, 48, 96};
  // admitted[pool][zipf]
  std::vector<std::vector<int>> admitted(pools.size());

  for (size_t pi = 0; pi < pools.size(); ++pi) {
    for (double zipf : zipfs) {
      ScenarioConfig config;
      config.base_streams = pools[pi];
      config.zipf = zipf;
      config.queries = 70;
      Scenario s = MakeScenario(config);
      SqprPlanner::Options options;
      options.timeout_ms = 60;
      SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
      int count = 0;
      for (StreamId q : s.workload.queries) {
        auto stats = planner.SubmitQuery(q);
        SQPR_CHECK(stats.ok());
        count += stats->admitted ? 1 : 0;  // repeats count as satisfied
      }
      admitted[pi].push_back(count);
    }
  }

  std::printf("# zipf  pool16  pool48  pool96\n");
  for (size_t zi = 0; zi < zipfs.size(); ++zi) {
    std::printf("%6.1f  %6d  %6d  %6d\n", zipfs[zi], admitted[0][zi],
                admitted[1][zi], admitted[2][zi]);
  }

  ShapeCheck(admitted[0].back() >= admitted[0].front(),
             "small pool: admissions grow with Zipf skew");
  ShapeCheck(admitted[2].back() >= admitted[2].front(),
             "large pool: admissions grow with Zipf skew");
  ShapeCheck(admitted[0][2] >= admitted[2][2],
             "at Zipf 1, fewer base streams (more overlap) admit >= more");
  return 0;
}
