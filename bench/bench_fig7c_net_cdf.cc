// Fig. 7(c): distribution of network resources — CDF of per-host network
// usage (sent + received Mbps) under SQPR and SODA at a low and a high
// input-query count. Both planners roughly balance network usage; more
// admitted queries mean more traffic.
//
// Scaled: 6 hosts, 30 ("-lo") and 100 ("-hi") input queries.

#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "planner/soda/soda_planner.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

namespace {

ScenarioConfig ClusterConfig(int queries) {
  ScenarioConfig config;
  config.hosts = 6;
  config.base_streams = 60;
  config.arities = {2, 3};
  config.queries = queries;
  config.seed = 7;
  return config;
}

std::vector<double> NetworkUsage(const Deployment& dep) {
  std::vector<double> mbps;
  for (HostId h = 0; h < dep.cluster().num_hosts(); ++h) {
    mbps.push_back(dep.NicOutUsed(h) + dep.NicInUsed(h));
  }
  return mbps;
}

}  // namespace

int main() {
  PrintHeader("Fig 7(c)", "CDF of per-host network usage, SQPR vs SODA", 7);

  std::map<std::string, std::vector<double>> results;
  for (int queries : {30, 100}) {
    const std::string tag = queries == 30 ? "lo" : "hi";
    {
      Scenario s = MakeScenario(ClusterConfig(queries));
      SqprPlanner::Options options;
      options.timeout_ms = 400;
      SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
      for (StreamId q : s.workload.queries) SQPR_CHECK(planner.SubmitQuery(q).ok());
      results["sqpr-" + tag] = NetworkUsage(planner.deployment());
    }
    {
      Scenario s = MakeScenario(ClusterConfig(queries));
      SodaPlanner planner(s.cluster.get(), s.catalog.get(), {});
      for (StreamId q : s.workload.queries) SQPR_CHECK(planner.SubmitQuery(q).ok());
      results["soda-" + tag] = NetworkUsage(planner.deployment());
    }
  }

  for (const auto& [name, samples] : results) {
    std::printf("# CDF %s (sent+received Mbps -> cumulative probability)\n",
                name.c_str());
    std::printf("%s", FormatCdf(EmpiricalCdf(samples)).c_str());
  }

  auto mean = [](const std::vector<double>& v) {
    RunningStats s;
    for (double x : v) s.Add(x);
    return s.mean();
  };
  ShapeCheck(mean(results["sqpr-hi"]) > mean(results["sqpr-lo"]),
             "SQPR network usage grows with admitted load");
  ShapeCheck(mean(results["soda-hi"]) >= mean(results["soda-lo"]),
             "SODA network usage grows with admitted load");
  return 0;
}
