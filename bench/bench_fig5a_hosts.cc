// Fig. 5(a): scalability in hosts — satisfiable queries vs cluster size,
// against the optimistic bound. More hosts admit super-linearly more
// queries (pooled reuse), but the gap to the bound widens because the
// MILP grows quadratically in hosts and the fixed timeout bites.
//
// Paper setup: 25-150 hosts. Scaled: 2-8 hosts, 80 ms timeout.

#include <vector>

#include "bench/bench_util.h"
#include "planner/optimistic/optimistic_bound.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  PrintHeader("Fig 5(a)", "satisfiable queries vs number of hosts", 1);

  const std::vector<int> host_counts = {2, 4, 6, 8};
  std::vector<int> sqpr_admitted, bound_admitted;
  std::vector<double> proved_fraction;

  for (int hosts : host_counts) {
    ScenarioConfig config;
    config.hosts = hosts;
    config.base_streams = 8 * hosts;
    config.queries = 30 * hosts;  // enough submissions to saturate
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = 80;
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
    int admitted = 0;
    int proved = 0, solves = 0;
    for (StreamId q : s.workload.queries) {
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      admitted += stats->admitted && !stats->already_served;
      if (!stats->already_served) {
        ++solves;
        proved += stats->proved_optimal;
      }
    }
    sqpr_admitted.push_back(admitted);
    proved_fraction.push_back(static_cast<double>(proved) /
                              std::max(1, solves));

    Scenario sb = MakeScenario(config);
    // Full-closure credit: provably above any planner (the chosen-tree
    // variant is tighter but a replanning planner can legitimately beat
    // it by materialising reuse-friendlier trees).
    OptimisticBound bound(*sb.cluster, sb.catalog.get(),
                          OptimisticBound::ReuseCredit::kFullClosure);
    for (StreamId q : sb.workload.queries) SQPR_CHECK(bound.SubmitQuery(q).ok());
    bound_admitted.push_back(bound.admitted_count());
  }

  std::printf("# hosts  sqpr  optimistic_bound  sqpr/bound  proved_optimal\n");
  for (size_t i = 0; i < host_counts.size(); ++i) {
    std::printf("%7d  %4d  %16d  %10.2f  %13.0f%%\n", host_counts[i],
                sqpr_admitted[i], bound_admitted[i],
                static_cast<double>(sqpr_admitted[i]) / bound_admitted[i],
                100.0 * proved_fraction[i]);
  }

  ShapeCheck(sqpr_admitted.back() > sqpr_admitted.front(),
             "more hosts admit more queries");
  // Super-linearity: doubling hosts 2->4 should more than double capacity
  // thanks to reuse across a bigger pool.
  ShapeCheck(sqpr_admitted[1] >= 2 * sqpr_admitted[0],
             "admissions grow super-linearly in hosts (paper Fig 5a)");
  ShapeCheck(sqpr_admitted.back() <= bound_admitted.back(),
             "SQPR stays below the optimistic bound at every size");
  // The paper's deterioration signal: bigger systems make the reduced
  // MILP harder, so fewer per-query solves finish before the timeout.
  // (Admission counts themselves are cushioned by the §VII greedy
  // fallback; see EXPERIMENTS.md.)
  ShapeCheck(proved_fraction.back() <= proved_fraction.front() - 0.2,
             "optimality-proof rate drops sharply with hosts (paper: the "
             "model does not scale in H)");
  return 0;
}
