// Fig. 5(c): scalability in query complexity — satisfiable queries when
// the whole workload consists of k-way joins, k = 2..5. Bigger queries
// need more resources, so fewer fit; SQPR's efficiency relative to the
// optimistic bound stays roughly flat because the reduced model grows
// with the query, not with the system.
//
// Paper setup: 2- to 5-way joins on 50 hosts. Scaled: 5 hosts, 60 ms.

#include <vector>

#include "bench/bench_util.h"
#include "planner/optimistic/optimistic_bound.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  PrintHeader("Fig 5(c)", "satisfiable queries vs query arity", 1);

  const std::vector<int> arities = {2, 3, 4, 5};
  std::vector<int> sqpr_admitted, bound_admitted;

  for (int arity : arities) {
    ScenarioConfig config;
    config.hosts = 5;
    config.base_streams = 40;
    config.arities = {arity};
    config.queries = 60;
    // The paper's simulation runs 1 Gbps links against 10 Mbps streams —
    // network is plentiful and CPU binds at every arity. Match that
    // ratio, because the optimistic bound pools CPU only: with scarce
    // NICs the comparison would measure bound looseness at high arity,
    // not planner efficiency.
    config.nic_mbps = 250.0;
    config.link_mbps = 500.0;
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = 150L * arity;  // budget grows with model size
    // Consolidating objective (λ4 = 0): load-balancing placements
    // fragment CPU across hosts, which starves large queries later in
    // the sequence — the Fig. 2 trade-off. The paper's complexity sweep
    // keeps admission count as the metric, so consolidate.
    options.model.weights.lambda4 = 0.0;
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
    int admitted = 0;
    for (StreamId q : s.workload.queries) {
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      admitted += stats->admitted && !stats->already_served;
    }
    sqpr_admitted.push_back(admitted);

    Scenario sb = MakeScenario(config);
    // Chosen-tree credit: at high arity the full-closure variant's
    // reuse credit grows ~2^k and the ratio would measure bound
    // looseness instead of planner efficiency (see EXPERIMENTS.md).
    // This estimator is tight but not a guaranteed upper bound.
    OptimisticBound bound(*sb.cluster, sb.catalog.get());
    for (StreamId q : sb.workload.queries) SQPR_CHECK(bound.SubmitQuery(q).ok());
    bound_admitted.push_back(bound.admitted_count());
  }

  std::printf("# arity  sqpr  optimistic_bound  sqpr/bound\n");
  for (size_t i = 0; i < arities.size(); ++i) {
    std::printf("%7d  %4d  %16d  %10.2f\n", arities[i], sqpr_admitted[i],
                bound_admitted[i],
                static_cast<double>(sqpr_admitted[i]) /
                    std::max(1, bound_admitted[i]));
  }

  ShapeCheck(sqpr_admitted.front() > sqpr_admitted.back(),
             "complex queries admit fewer (paper: 2-way >> 5-way)");
  const double r2 = static_cast<double>(sqpr_admitted[0]) /
                    std::max(1, bound_admitted[0]);
  const double r5 = static_cast<double>(sqpr_admitted[3]) /
                    std::max(1, bound_admitted[3]);
  ShapeCheck(r5 >= r2 - 0.35,
             "efficiency vs the bound roughly independent of arity");
  return 0;
}
