// Fig. 7(b): distribution of CPU resources — CDF of per-host CPU
// utilisation under SQPR and SODA at a low and a high input-query count
// (the paper's 50 vs 150). Both planners balance load; the high-load
// CDFs sit to the right of the low-load ones.
//
// Scaled: 8 hosts, waves to 30 ("-lo") and 100 ("-hi") input queries.

#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "planner/planner.h"
#include "planner/soda/soda_planner.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

namespace {

ScenarioConfig ClusterConfig(int queries) {
  ScenarioConfig config;
  config.hosts = 6;
  config.base_streams = 60;
  config.arities = {2, 3};
  config.queries = queries;
  config.seed = 7;
  return config;
}

std::vector<double> CpuUtilisation(const Deployment& dep) {
  std::vector<double> util;
  for (HostId h = 0; h < dep.cluster().num_hosts(); ++h) {
    util.push_back(100.0 * dep.CpuUsed(h) / dep.cluster().host(h).cpu);
  }
  return util;
}

}  // namespace

int main() {
  PrintHeader("Fig 7(b)", "CDF of per-host CPU utilisation, SQPR vs SODA", 7);

  std::map<std::string, std::vector<double>> results;
  for (int queries : {30, 100}) {
    const std::string tag = queries == 30 ? "lo" : "hi";
    {
      Scenario s = MakeScenario(ClusterConfig(queries));
      SqprPlanner::Options options;
      options.timeout_ms = 400;
      SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
      for (StreamId q : s.workload.queries) SQPR_CHECK(planner.SubmitQuery(q).ok());
      results["sqpr-" + tag] = CpuUtilisation(planner.deployment());
    }
    {
      Scenario s = MakeScenario(ClusterConfig(queries));
      SodaPlanner planner(s.cluster.get(), s.catalog.get(), {});
      for (StreamId q : s.workload.queries) SQPR_CHECK(planner.SubmitQuery(q).ok());
      results["soda-" + tag] = CpuUtilisation(planner.deployment());
    }
  }

  for (const auto& [name, samples] : results) {
    std::printf("# CDF %s (cpu%% -> cumulative probability)\n", name.c_str());
    std::printf("%s", FormatCdf(EmpiricalCdf(samples)).c_str());
  }

  auto mean = [](const std::vector<double>& v) {
    RunningStats s;
    for (double x : v) s.Add(x);
    return s.mean();
  };
  ShapeCheck(mean(results["sqpr-hi"]) > mean(results["sqpr-lo"]),
             "SQPR high-load CDF sits right of the low-load CDF");
  ShapeCheck(mean(results["soda-hi"]) >= mean(results["soda-lo"]),
             "SODA high-load CDF sits right of the low-load CDF");
  ShapeCheck(mean(results["sqpr-lo"]) >= mean(results["soda-lo"]) - 1.0,
             "SQPR consumes at least as much CPU at low load (it admits "
             "more queries, paper SQPR-50 vs SODA-50)");
  // Load balancing: no host should be pinned while others idle at high
  // load — the spread should stay bounded.
  auto spread = [](const std::vector<double>& v) {
    double lo = 1e9, hi = -1e9;
    for (double x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return hi - lo;
  };
  ShapeCheck(spread(results["sqpr-hi"]) <= 60.0,
             "SQPR balances CPU across hosts at high load");
  return 0;
}
