// Fig. 7(a): cluster deployment — satisfied vs input queries for SQPR
// and the SODA-style template planner on the DISSP-like testbed model.
// SQPR accepts queries near-linearly until saturation and beats SODA,
// whose fixed left-deep templates and one-shot placement lose
// flexibility as resources tighten.
//
// Paper setup: 15 Emulab hosts, 300 base streams, 2-/3-way joins,
// 50-query submission waves. Scaled: 6 hosts, 60 base streams, waves of
// 20 up to 120 queries, 400 ms solver budget. The per-host CPU budget
// keeps the paper's calibration of ~a-dozen joins per host.

#include <vector>

#include "bench/bench_util.h"
#include "planner/soda/soda_planner.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  ScenarioConfig config;
  config.hosts = 6;
  config.base_streams = 60;
  config.arities = {2, 3};
  config.queries = 120;
  config.seed = 7;
  PrintHeader("Fig 7(a)", "cluster deployment: SQPR vs SODA admissions",
              config.seed);

  std::vector<int> sqpr_series, soda_series;
  {
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = 400;
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
    int admitted = 0;
    for (StreamId q : s.workload.queries) {
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      admitted += stats->admitted ? 1 : 0;
      sqpr_series.push_back(admitted);
    }
  }
  {
    Scenario s = MakeScenario(config);
    SodaPlanner planner(s.cluster.get(), s.catalog.get(), {});
    int admitted = 0;
    for (StreamId q : s.workload.queries) {
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      admitted += stats->admitted ? 1 : 0;
      soda_series.push_back(admitted);
    }
  }

  std::printf("# submitted  sqpr  soda\n");
  for (size_t i = 19; i < sqpr_series.size(); i += 20) {
    std::printf("%10zu  %4d  %4d\n", i + 1, sqpr_series[i], soda_series[i]);
  }

  const size_t last = sqpr_series.size() - 1;
  ShapeCheck(sqpr_series[last] >= soda_series[last],
             "SQPR admits at least as many queries as SODA (paper Fig 7a)");
  // Near-linear acceptance before saturation: at 1/3 of the workload SQPR
  // should have admitted the large majority of submissions.
  ShapeCheck(sqpr_series[39] >= 30,
             "SQPR accepts queries near-linearly before saturation");
  return 0;
}
