#ifndef SQPR_BENCH_BENCH_UTIL_H_
#define SQPR_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the experiment benches (one binary per paper
// figure; see DESIGN.md §3 and EXPERIMENTS.md).
//
// Scale note: the paper runs 50-150 hosts against CPLEX with 5-100 s
// timeouts. Our from-scratch MILP solver is given proportionally smaller
// clusters and millisecond timeouts (documented per bench) so that every
// figure regenerates in seconds while preserving the *regimes* the paper
// reports: deadline saturation with many hosts / complex queries /
// batched submissions, CPU+bandwidth-constrained admission, etc.

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "workload/generator.h"

namespace sqpr {
namespace bench {

/// A fully-specified simulation scenario (cluster + workload).
struct ScenarioConfig {
  int hosts = 6;
  double host_cpu = 0.8;        // ~12 two-way joins per host (§V-B scale)
  double nic_mbps = 70.0;       // scarce: ~7 base-stream transfers
  double link_mbps = 140.0;
  int base_streams = 48;
  double base_rate_mbps = 10.0;
  /// 2-/3-way joins: the arity mix of the paper's cluster deployment.
  /// Higher arities appear in the dedicated Fig 5(c)/6(b) sweeps with
  /// proportionally larger solver budgets.
  std::vector<int> arities = {2, 3};
  double zipf = 1.0;
  int queries = 90;
  uint64_t seed = 1;
};

struct Scenario {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Cluster> cluster;
  Workload workload;
};

inline Scenario MakeScenario(const ScenarioConfig& config) {
  Scenario s;
  s.catalog = std::make_unique<Catalog>(CostModel{});
  s.cluster = std::make_unique<Cluster>(
      config.hosts,
      HostSpec{config.host_cpu, config.nic_mbps, config.nic_mbps, ""},
      config.link_mbps);
  WorkloadConfig wc;
  wc.num_base_streams = config.base_streams;
  wc.base_rate_mbps = config.base_rate_mbps;
  wc.zipf_s = config.zipf;
  wc.arities = config.arities;
  wc.num_queries = config.queries;
  wc.seed = config.seed;
  Result<Workload> workload = GenerateWorkload(wc, config.hosts, s.catalog.get());
  SQPR_CHECK(workload.ok()) << workload.status().ToString();
  s.workload = std::move(*workload);
  return s;
}

/// Prints a PASS/FAIL line for a paper-shape acceptance criterion.
inline bool ShapeCheck(bool ok, const std::string& what) {
  std::printf("shape-check [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok;
}

inline void PrintHeader(const char* figure, const char* description,
                        uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(seed %llu; scaled-down reproduction, see EXPERIMENTS.md)\n",
              static_cast<unsigned long long>(seed));
  std::printf("==============================================================\n");
}

// ---- Machine-readable bench output (--json <path>). ----
//
// Every bench that opts in emits one flat JSON document:
//   {
//     "bench": "<name>", "seed": N, "schema_version": 2,
//     "host_cpus": C,             // hardware_concurrency at run time
//     "shape_checks_failed": K,   // nonzero when any shape check failed
//     "records": [
//       {"scenario": "...", "labels": {"k": "v", ...},
//        "metrics": {"wall_ms": 1.2, ...}},
//       ...
//     ]
//   }
// Records are appended in run order; metric keys are emitted sorted, so
// the file is diffable across runs. This is the perf trajectory the
// checked-in BENCH_*.json baselines (tools/run_bench.sh) track — wins
// land as numbers, regressions as diffs.

/// One measured configuration of a bench scenario.
struct BenchRecord {
  std::string scenario;
  /// Non-numeric dimensions (workers, measure mode, ...).
  std::map<std::string, std::string> labels;
  /// Numeric results (timings, throughputs, counters).
  std::map<std::string, double> metrics;
};

inline std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Collects BenchRecords and writes the JSON document above.
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench, uint64_t seed)
      : bench_(std::move(bench)), seed_(seed) {}

  BenchRecord& Add(std::string scenario) {
    records_.emplace_back();
    records_.back().scenario = std::move(scenario);
    return records_.back();
  }

  /// Writes the document; returns false (with a message on stderr) when
  /// the file cannot be created.
  bool WriteFile(const std::string& path, int shape_checks_failed) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write JSON to %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"seed\": %llu,\n",
                 JsonEscape(bench_).c_str(),
                 static_cast<unsigned long long>(seed_));
    // v2: service records gained solver_p99_ms / solver_samples /
    // measure_ms_p99 (histogram-backed percentiles), plus host_cpus in
    // the header — absolute timings are only comparable between
    // baselines recorded on similar hardware, and the core count is
    // the first thing that silently changes between runners.
    std::fprintf(f, "  \"schema_version\": 2,\n");
    std::fprintf(f, "  \"host_cpus\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"shape_checks_failed\": %d,\n", shape_checks_failed);
    std::fprintf(f, "  \"records\": [\n");
    for (size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(f, "    {\"scenario\": \"%s\",\n",
                   JsonEscape(r.scenario).c_str());
      std::fprintf(f, "     \"labels\": {");
      size_t n = 0;
      for (const auto& [k, v] : r.labels) {
        std::fprintf(f, "%s\"%s\": \"%s\"", n++ ? ", " : "",
                     JsonEscape(k).c_str(), JsonEscape(v).c_str());
      }
      std::fprintf(f, "},\n     \"metrics\": {");
      n = 0;
      for (const auto& [k, v] : r.metrics) {
        // Counters round-trip exactly (a %.6g 1.90404e+06 would eat
        // the low digits and hide regressions from the baseline diff);
        // timings keep the compact float form.
        const bool integral =
            v >= -9.0e15 && v <= 9.0e15 &&
            v == static_cast<double>(static_cast<long long>(v));
        if (integral) {
          std::fprintf(f, "%s\"%s\": %lld", n++ ? ", " : "",
                       JsonEscape(k).c_str(), static_cast<long long>(v));
        } else {
          std::fprintf(f, "%s\"%s\": %.6g", n++ ? ", " : "",
                       JsonEscape(k).c_str(), v);
        }
      }
      std::fprintf(f, "}}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote bench JSON: %s (%zu records)\n", path.c_str(),
                records_.size());
    return true;
  }

 private:
  std::string bench_;
  uint64_t seed_;
  std::vector<BenchRecord> records_;
};

/// Parses the shared bench command line: `--json <path>` selects the
/// machine-readable output file (empty = stdout text only). Benches
/// that support flight-recorder capture pass `trace_out` to also accept
/// `--trace-out <path>` (Chrome trace JSON of an instrumented replay;
/// which replay is documented per bench); likewise `audit_out` accepts
/// `--audit-out <path>` (full sqpr-audit-v1 decision journal of the
/// instrumented replay) and `metrics_series_out` accepts
/// `--metrics-series-out <path>` (sqpr-metrics-series-v1 JSONL time
/// series of the same replay). Returns false (after printing usage) on
/// unknown flags, so benches exit 2.
inline bool ParseBenchArgs(int argc, char** argv, std::string* json_path,
                           std::string* trace_out = nullptr,
                           std::string* audit_out = nullptr,
                           std::string* metrics_series_out = nullptr) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      *json_path = argv[++i];
    } else if (trace_out != nullptr &&
               std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      *trace_out = argv[++i];
    } else if (audit_out != nullptr &&
               std::strcmp(argv[i], "--audit-out") == 0 && i + 1 < argc) {
      *audit_out = argv[++i];
    } else if (metrics_series_out != nullptr &&
               std::strcmp(argv[i], "--metrics-series-out") == 0 &&
               i + 1 < argc) {
      *metrics_series_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>]%s%s%s\n"
                   "  --json <path>  also write results as JSON (the\n"
                   "                 BENCH_*.json trajectory format)\n"
                   "%s%s%s",
                   argv[0], trace_out != nullptr ? " [--trace-out <path>]" : "",
                   audit_out != nullptr ? " [--audit-out <path>]" : "",
                   metrics_series_out != nullptr
                       ? " [--metrics-series-out <path>]"
                       : "",
                   trace_out != nullptr
                       ? "  --trace-out <path>  write a flight-recorder\n"
                         "                 Chrome trace of the instrumented\n"
                         "                 replay (see the bench header)\n"
                       : "",
                   audit_out != nullptr
                       ? "  --audit-out <path>  write the full sqpr-audit-v1\n"
                         "                 decision journal of the same\n"
                         "                 instrumented replay\n"
                       : "",
                   metrics_series_out != nullptr
                       ? "  --metrics-series-out <path>  write the\n"
                         "                 sqpr-metrics-series-v1 JSONL time\n"
                         "                 series of the same replay\n"
                       : "");
      return false;
    }
  }
  return true;
}

}  // namespace bench
}  // namespace sqpr

#endif  // SQPR_BENCH_BENCH_UTIL_H_
