#ifndef SQPR_BENCH_BENCH_UTIL_H_
#define SQPR_BENCH_BENCH_UTIL_H_

// Shared scaffolding for the experiment benches (one binary per paper
// figure; see DESIGN.md §3 and EXPERIMENTS.md).
//
// Scale note: the paper runs 50-150 hosts against CPLEX with 5-100 s
// timeouts. Our from-scratch MILP solver is given proportionally smaller
// clusters and millisecond timeouts (documented per bench) so that every
// figure regenerates in seconds while preserving the *regimes* the paper
// reports: deadline saturation with many hosts / complex queries /
// batched submissions, CPU+bandwidth-constrained admission, etc.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "workload/generator.h"

namespace sqpr {
namespace bench {

/// A fully-specified simulation scenario (cluster + workload).
struct ScenarioConfig {
  int hosts = 6;
  double host_cpu = 0.8;        // ~12 two-way joins per host (§V-B scale)
  double nic_mbps = 70.0;       // scarce: ~7 base-stream transfers
  double link_mbps = 140.0;
  int base_streams = 48;
  double base_rate_mbps = 10.0;
  /// 2-/3-way joins: the arity mix of the paper's cluster deployment.
  /// Higher arities appear in the dedicated Fig 5(c)/6(b) sweeps with
  /// proportionally larger solver budgets.
  std::vector<int> arities = {2, 3};
  double zipf = 1.0;
  int queries = 90;
  uint64_t seed = 1;
};

struct Scenario {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Cluster> cluster;
  Workload workload;
};

inline Scenario MakeScenario(const ScenarioConfig& config) {
  Scenario s;
  s.catalog = std::make_unique<Catalog>(CostModel{});
  s.cluster = std::make_unique<Cluster>(
      config.hosts,
      HostSpec{config.host_cpu, config.nic_mbps, config.nic_mbps, ""},
      config.link_mbps);
  WorkloadConfig wc;
  wc.num_base_streams = config.base_streams;
  wc.base_rate_mbps = config.base_rate_mbps;
  wc.zipf_s = config.zipf;
  wc.arities = config.arities;
  wc.num_queries = config.queries;
  wc.seed = config.seed;
  Result<Workload> workload = GenerateWorkload(wc, config.hosts, s.catalog.get());
  SQPR_CHECK(workload.ok()) << workload.status().ToString();
  s.workload = std::move(*workload);
  return s;
}

/// Prints a PASS/FAIL line for a paper-shape acceptance criterion.
inline bool ShapeCheck(bool ok, const std::string& what) {
  std::printf("shape-check [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  return ok;
}

inline void PrintHeader(const char* figure, const char* description,
                        uint64_t seed) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("(seed %llu; scaled-down reproduction, see EXPERIMENTS.md)\n",
              static_cast<unsigned long long>(seed));
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace sqpr

#endif  // SQPR_BENCH_BENCH_UTIL_H_
