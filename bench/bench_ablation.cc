// Ablation bench (DESIGN.md §5): design choices of this reproduction and
// of the paper, measured on one fixed workload.
//
//  1. Acyclicity: lazy cycle cuts vs the literal (III.7) potential rows.
//     Same admissions (identical feasible sets), different model size
//     and planning time.
//  2. Problem reduction (§IV-A) on vs off: identical or better admissions
//     without reduction given unlimited time, but far slower planning —
//     the paper's a-posteriori justification for fixing variables.
//  3. Relaying (§II-C) on vs off: relays can only help admissions.

#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

namespace {

struct AblationResult {
  int admitted = 0;
  double mean_ms = 0.0;
};

AblationResult RunVariant(const ScenarioConfig& config,
                          const SqprPlanner::Options& options) {
  Scenario s = MakeScenario(config);
  SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
  AblationResult result;
  RunningStats times;
  for (StreamId q : s.workload.queries) {
    auto stats = planner.SubmitQuery(q);
    SQPR_CHECK(stats.ok());
    result.admitted += stats->admitted && !stats->already_served;
    times.Add(stats->wall_ms);
  }
  result.mean_ms = times.mean();
  return result;
}

}  // namespace

int main() {
  ScenarioConfig config;
  config.hosts = 4;
  config.base_streams = 24;
  config.queries = 30;
  config.arities = {2, 3};
  PrintHeader("Ablation", "acyclicity / problem reduction / relaying",
              config.seed);

  SqprPlanner::Options base_options;
  base_options.timeout_ms = 300;

  // 1. Acyclicity formulation.
  auto lazy = RunVariant(config, base_options);
  SqprPlanner::Options potentials_options = base_options;
  potentials_options.model.acyclicity = AcyclicityMode::kPotentials;
  auto potentials = RunVariant(config, potentials_options);

  // 2. Problem reduction.
  SqprPlanner::Options unreduced_options = base_options;
  unreduced_options.reduce_problem = false;
  auto unreduced = RunVariant(config, unreduced_options);

  // 3. Relaying.
  SqprPlanner::Options norelay_options = base_options;
  norelay_options.model.enable_relay = false;
  auto norelay = RunVariant(config, norelay_options);

  std::printf("# variant             admitted  mean_plan_ms\n");
  std::printf("lazy-cycle-cuts       %8d  %12.1f\n", lazy.admitted, lazy.mean_ms);
  std::printf("potential-rows        %8d  %12.1f\n", potentials.admitted,
              potentials.mean_ms);
  std::printf("no-problem-reduction  %8d  %12.1f\n", unreduced.admitted,
              unreduced.mean_ms);
  std::printf("no-relaying           %8d  %12.1f\n", norelay.admitted,
              norelay.mean_ms);

  ShapeCheck(std::abs(lazy.admitted - potentials.admitted) <= 2,
             "both acyclicity formulations admit (nearly) the same set");
  ShapeCheck(unreduced.mean_ms >= lazy.mean_ms,
             "disabling §IV-A problem reduction does not speed planning up");
  ShapeCheck(norelay.admitted <= lazy.admitted,
             "disabling relays cannot increase admissions");
  return 0;
}
