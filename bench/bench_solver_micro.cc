// Microbenchmarks (google-benchmark) for the solver substrate that
// replaces CPLEX: cold simplex solves and branch-and-bound throughput at
// the sizes the SQPR reduced models produce.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/rng.h"
#include "lp/model.h"
#include "lp/simplex.h"
#include "milp/presolve.h"
#include "milp/solver.h"
#include "model/catalog.h"
#include "model/cluster.h"
#include "plan/deployment.h"
#include "planner/sqpr/model_builder.h"

namespace sqpr {
namespace {

lp::Model RandomLp(int vars, int rows, uint64_t seed) {
  Rng rng(seed);
  lp::Model m(lp::Sense::kMaximize);
  std::vector<double> ref(vars);
  for (int v = 0; v < vars; ++v) {
    const double ub = rng.NextDouble(1.0, 10.0);
    m.AddVariable(0.0, ub, rng.NextDouble(-1.0, 2.0));
    ref[v] = rng.NextDouble(0.0, ub);
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    double activity = 0.0;
    for (int v = 0; v < vars; ++v) {
      if (rng.NextBool(0.3)) {
        const double coef = rng.NextDouble(-2.0, 3.0);
        terms.emplace_back(v, coef);
        activity += coef * ref[v];
      }
    }
    if (terms.empty()) continue;
    m.AddRow(-lp::kInf, activity + rng.NextDouble(0.0, 3.0),
             std::move(terms));
  }
  return m;
}

void BM_SimplexColdSolve(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  const int rows = vars / 2;
  const lp::Model m = RandomLp(vars, rows, 42);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    auto result = solver.Solve(m);
    benchmark::DoNotOptimize(result.objective);
  }
  state.SetLabel(std::to_string(vars) + "v/" + std::to_string(rows) + "r");
}
BENCHMARK(BM_SimplexColdSolve)->Arg(50)->Arg(150)->Arg(400)->Arg(800);

void BM_MilpKnapsack(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  Rng rng(7);
  milp::Model m;
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < items; ++i) {
    const int v = m.AddBinary(rng.NextDouble(1.0, 5.0));
    terms.emplace_back(v, rng.NextDouble(1.0, 4.0));
  }
  m.lp.AddRow(-lp::kInf, items * 0.8, terms, "weight");
  milp::Solver solver;
  for (auto _ : state) {
    auto result = solver.Solve(m, {});
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(10)->Arg(16)->Arg(24);

void BM_SqprModelBuild(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  Catalog catalog{CostModel{}};
  Cluster cluster(hosts, HostSpec{1.0, 120.0, 120.0, ""}, 240.0);
  std::vector<StreamId> base;
  for (int i = 0; i < 6; ++i) {
    base.push_back(catalog.AddBaseStream(i % hosts, 10.0));
  }
  const StreamId q =
      *catalog.CanonicalJoinStream({base[0], base[1], base[2]});
  const Closure closure = *catalog.JoinClosure(q);
  Deployment dep(&cluster, &catalog);
  for (auto _ : state) {
    SqprMip mip(dep, closure.streams, closure.operators, {{q, false}}, {});
    benchmark::DoNotOptimize(mip.mip().lp.num_variables());
  }
}
BENCHMARK(BM_SqprModelBuild)->Arg(4)->Arg(8)->Arg(16);

void BM_SqprSingleQuerySolve(benchmark::State& state) {
  const int hosts = static_cast<int>(state.range(0));
  Catalog catalog{CostModel{}};
  Cluster cluster(hosts, HostSpec{1.0, 120.0, 120.0, ""}, 240.0);
  std::vector<StreamId> base;
  for (int i = 0; i < 6; ++i) {
    base.push_back(catalog.AddBaseStream(i % hosts, 10.0));
  }
  const StreamId q =
      *catalog.CanonicalJoinStream({base[0], base[1], base[2]});
  const Closure closure = *catalog.JoinClosure(q);
  Deployment dep(&cluster, &catalog);
  for (auto _ : state) {
    SqprMip mip(dep, closure.streams, closure.operators, {{q, false}}, {});
    SqprMip::CycleCutHandler handler(&mip);
    milp::SolverOptions options;
    options.lazy = &handler;
    options.gap_abs = 0.1;
    options.deadline = Deadline::AfterMillis(2000);
    milp::Solver solver;
    auto result = solver.Solve(mip.mip(), options);
    benchmark::DoNotOptimize(result.nodes);
  }
}
BENCHMARK(BM_SqprSingleQuerySolve)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

/// Presolve/cuts ablation on the reduced SQPR single-query model under
/// the planner's per-query budget: arg0 = presolve, arg1 = root cuts.
/// Wall time is fixed by the deadline, so the meaningful outputs are the
/// residual optimality gap and the node/LP-iteration throughput at the
/// moment the budget expires.
void BM_SqprSolveAblation(benchmark::State& state) {
  const bool presolve = state.range(0) != 0;
  const bool cuts = state.range(1) != 0;
  const int hosts = 5;
  Catalog catalog{CostModel{}};
  Cluster cluster(hosts, HostSpec{1.0, 120.0, 120.0, ""}, 240.0);
  std::vector<StreamId> base;
  for (int i = 0; i < 8; ++i) {
    base.push_back(catalog.AddBaseStream(i % hosts, 10.0));
  }
  const StreamId q =
      *catalog.CanonicalJoinStream({base[0], base[1], base[2]});
  const Closure closure = *catalog.JoinClosure(q);
  Deployment dep(&cluster, &catalog);
  int64_t nodes = 0, iters = 0;
  double gap = 0.0;
  int solves = 0;
  for (auto _ : state) {
    SqprMip mip(dep, closure.streams, closure.operators, {{q, false}}, {});
    SqprMip::CycleCutHandler handler(&mip);
    milp::SolverOptions options;
    options.lazy = &handler;
    options.gap_abs = 0.1;
    options.presolve = presolve;
    options.cuts.enable = cuts;
    options.deadline = Deadline::AfterMillis(250);  // planner-scale budget
    milp::Solver solver;
    auto result = solver.Solve(mip.mip(), options);
    nodes += result.nodes;
    iters += result.lp_iterations;
    gap += std::min(result.Gap(), 1.0);
    ++solves;
    benchmark::DoNotOptimize(result.objective);
  }
  state.counters["nodes"] =
      benchmark::Counter(static_cast<double>(nodes),
                         benchmark::Counter::kAvgIterations);
  state.counters["lp_iters"] =
      benchmark::Counter(static_cast<double>(iters),
                         benchmark::Counter::kAvgIterations);
  state.counters["end_gap_pct"] = benchmark::Counter(
      100.0 * gap / std::max(1, solves), benchmark::Counter::kAvgIterations);
  state.SetLabel(std::string(presolve ? "presolve" : "nopresolve") + "/" +
                 (cuts ? "cuts" : "nocuts"));
}
BENCHMARK(BM_SqprSolveAblation)
    ->Args({1, 1})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({0, 0})
    ->Unit(benchmark::kMillisecond);

/// Presolve column elimination on a planner-style model where most
/// decisions are pinned (the §IV-A fixing): measures the reduction pass
/// itself, which must stay negligible next to the solve.
void BM_PresolveApply(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  milp::Model m;
  std::vector<std::pair<int, double>> terms;
  for (int i = 0; i < n; ++i) {
    const int v = m.AddBinary(rng.NextDouble(0.5, 3.0));
    if (rng.NextBool(0.7)) {
      const double pin = rng.NextBool(0.5) ? 1.0 : 0.0;
      m.lp.SetVariableBounds(v, pin, pin);
    }
    terms.emplace_back(v, rng.NextDouble(0.5, 2.0));
    if (terms.size() == 16) {
      m.lp.AddRow(-lp::kInf, 8.0, terms);
      terms.clear();
    }
  }
  for (auto _ : state) {
    milp::Presolver pre;
    auto stats = pre.Apply(m);
    benchmark::DoNotOptimize(stats.fixed_columns);
  }
  state.SetLabel(std::to_string(n) + " cols");
}
BENCHMARK(BM_PresolveApply)->Arg(200)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace sqpr

BENCHMARK_MAIN();
