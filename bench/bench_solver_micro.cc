// Solver micro-bench: isolates the two incremental-solve savings the
// planner's model cache buys on the hot path, as machine-readable
// numbers (the BENCH_solver_micro.json trajectory):
//
//  * build-vs-patch — constructing a grounded SQPR model from scratch
//    (every variable, row and coefficient) vs Rebind-ing a cached
//    skeleton against a new base deployment (bounds only, O(rows));
//  * cold-vs-warm — solving the same model structure across simulated
//    rounds from a slack basis each time vs chaining each round's root
//    basis (and pooled lazy cycle cuts) into the next solve.
//
// Shape checks gate correctness, not speed: a patched model must match
// a fresh build bit for bit, and a warm-started solve must reach the
// cold objective. Absolute timings land in the JSON for the checked-in
// baseline diff; CI only gates the schema (timings are host-dependent).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/deadline.h"
#include "milp/solver.h"
#include "plan/deployment.h"
#include "planner/sqpr/model_builder.h"
#include "planner/sqpr/model_cache.h"
#include "planner/sqpr/sqpr_planner.h"

namespace sqpr {
namespace {

constexpr uint64_t kSeed = 11;

struct Fixture {
  bench::Scenario scenario;
  SqprPlanner planner;
  std::vector<StreamId> streams;
  std::vector<OperatorId> operators;
  std::vector<DemandSpec> demands;
  StreamId query = kInvalidStream;

  explicit Fixture(const bench::ScenarioConfig& config)
      : scenario(bench::MakeScenario(config)),
        planner(scenario.cluster.get(), scenario.catalog.get(),
                [] {
                  SqprPlanner::Options o;
                  o.timeout_ms = 250;
                  return o;
                }()) {}
};

/// Admits a prefix of the workload so the base deployment carries the
/// committed operators/flows a mid-experiment solve patches against,
/// then grounds the relevant sets of the next unserved query.
std::unique_ptr<Fixture> MakeFixture() {
  // Small enough (4 hosts, 2-way joins) that the tight-gap cold/warm
  // solves below prove optimality in milliseconds — deadline-truncated
  // solves would make the cold-vs-warm timing (and objective equality)
  // meaningless.
  bench::ScenarioConfig config;
  config.hosts = 4;
  config.base_streams = 16;
  config.queries = 16;
  config.arities = {2};
  config.seed = kSeed;
  auto f = std::make_unique<Fixture>(config);
  for (int i = 0; i < 8; ++i) {
    const Status st =
        f->planner.SubmitQuery(f->scenario.workload.queries[i]).status();
    SQPR_CHECK(st.ok()) << st.ToString();
  }
  f->query = f->scenario.workload.queries[8];
  const Closure closure = *f->scenario.catalog->JoinClosure(f->query);
  f->streams = closure.streams;
  f->operators = closure.operators;
  f->demands = {{f->query, /*must_serve=*/false}};
  return f;
}

int BenchBuildVsPatch(Fixture* f, bench::BenchJsonWriter* json) {
  constexpr int kIters = 50;
  int failed = 0;

  Stopwatch build_watch;
  for (int i = 0; i < kIters; ++i) {
    SqprMip mip(f->planner.deployment(), f->streams, f->operators,
                f->demands, {});
    // Touch the model so the build cannot be elided.
    if (mip.mip().lp.num_variables() == 0) ++failed;
  }
  const double build_ms = build_watch.ElapsedMillis() / kIters;

  SqprMip cached(f->planner.deployment(), f->streams, f->operators,
                 f->demands, {});
  Stopwatch patch_watch;
  for (int i = 0; i < kIters; ++i) {
    cached.Rebind(f->planner.deployment());
  }
  const double patch_ms = patch_watch.ElapsedMillis() / kIters;

  // The whole cache rests on this: a rebound skeleton IS a fresh build.
  SqprMip reference(f->planner.deployment(), f->streams, f->operators,
                    f->demands, {});
  const Status same = cached.CheckModelEquals(reference);
  if (!bench::ShapeCheck(same.ok(),
                         "patched model bit-identical to fresh build")) {
    ++failed;
  }
  if (!bench::ShapeCheck(patch_ms <= build_ms,
                         "bounds-only patch no slower than full build")) {
    ++failed;
  }

  std::printf("model build %7.3f ms   patch %7.3f ms   (%.1fx, %d vars)\n",
              build_ms, patch_ms, build_ms / std::max(patch_ms, 1e-9),
              reference.mip().lp.num_variables());
  bench::BenchRecord& rec = json->Add("build_vs_patch");
  rec.labels["hosts"] = std::to_string(f->scenario.cluster->num_hosts());
  rec.metrics["build_ms_avg"] = build_ms;
  rec.metrics["patch_ms_avg"] = patch_ms;
  rec.metrics["model_vars"] = reference.mip().lp.num_variables();
  rec.metrics["model_rows"] = reference.mip().lp.num_rows();
  return failed;
}

int BenchColdVsWarm(Fixture* f, bench::BenchJsonWriter* json) {
  constexpr int kRounds = 12;
  int failed = 0;

  SqprMip mip(f->planner.deployment(), f->streams, f->operators, f->demands,
              {});
  const std::vector<double> warm_point = mip.WarmStart();
  milp::Solver solver;

  auto base_options = [&] {
    milp::SolverOptions options;
    options.deadline = Deadline::AfterMillis(2000);
    options.gap_abs = 1e-9;
    options.gap_rel = 1e-6;
    options.warm_start = &warm_point;
    return options;
  };

  // Cold and warm rounds interleave so clock-frequency drift during the
  // run lands on both sides equally — back-to-back blocks used to swing
  // the comparison by more than the effect under measurement.
  //
  // Warm chain: every round seeds the next with its root basis, skips
  // the root dive (the warm-start incumbent covers it) and harvests lazy
  // cycle cuts — the exact flow SqprPlanner::SubmitBatch runs between
  // re-planning rounds of one drift cycle, including its payoff gate on
  // pooled-cut replay (which this small model fails, so the pool is
  // harvest-only here).
  constexpr int kMinRowsPerPooledCut = 8;  // mirrors SqprPlanner's gate
  milp::CutPool pool;
  std::vector<lp::BasisState> basis;
  std::vector<int> basis_columns;
  int64_t warm_starts = 0, basis_discards = 0;
  double cold_objective = 0.0, warm_objective = 0.0;
  double cold_total_ms = 0.0, warm_total_ms = 0.0;
  for (int i = 0; i < kRounds; ++i) {
    {
      SqprMip::CycleCutHandler handler(&mip);
      milp::SolverOptions options = base_options();
      options.lazy = &handler;
      Stopwatch round_watch;
      const milp::MipResult r = solver.Solve(mip.mip(), options);
      cold_total_ms += round_watch.ElapsedMillis();
      SQPR_CHECK(r.has_solution());
      cold_objective = r.objective;
    }
    {
      // Frozen copy of the prior rounds' pool as the separation source;
      // the live pool keeps harvesting — same split SubmitBatch uses
      // between prior->cuts and next_art->cuts.
      const milp::CutPool prior = pool;
      SqprMip::CycleCutHandler handler(&mip);
      handler.set_harvest(&pool);
      if (!prior.empty() &&
          mip.mip().lp.num_rows() >=
              kMinRowsPerPooledCut * static_cast<int>(prior.size())) {
        handler.set_pool(&prior);
      }
      milp::SolverOptions options = base_options();
      options.lazy = &handler;
      if (!basis.empty()) {
        options.root_warm_basis = &basis;
        options.root_warm_basis_columns = &basis_columns;
        options.root_dive = false;
      }
      Stopwatch round_watch;
      milp::MipResult r = solver.Solve(mip.mip(), options);
      warm_total_ms += round_watch.ElapsedMillis();
      SQPR_CHECK(r.has_solution());
      warm_objective = r.objective;
      if (r.used_warm_basis) ++warm_starts;
      if (r.warm_basis_discarded) ++basis_discards;
      basis = std::move(r.root_basis);
      basis_columns = std::move(r.root_basis_columns);
    }
  }
  const double cold_ms = cold_total_ms / kRounds;
  const double warm_ms = warm_total_ms / kRounds;

  if (!bench::ShapeCheck(std::abs(warm_objective - cold_objective) < 1e-6,
                         "warm-started solve reaches cold objective")) {
    ++failed;
  }
  if (!bench::ShapeCheck(warm_starts > 0,
                         "warm chain actually installs the root basis")) {
    ++failed;
  }
  if (!bench::ShapeCheck(warm_ms <= cold_ms,
                         "warm chain no slower than cold solves")) {
    ++failed;
  }

  std::printf(
      "solve cold %8.3f ms   warm %8.3f ms   "
      "(warm_starts=%lld discards=%lld pooled_cuts=%zu)\n",
      cold_ms, warm_ms, static_cast<long long>(warm_starts),
      static_cast<long long>(basis_discards), pool.size());
  bench::BenchRecord& rec = json->Add("cold_vs_warm");
  rec.labels["rounds"] = std::to_string(kRounds);
  rec.metrics["cold_solve_ms_avg"] = cold_ms;
  rec.metrics["warm_solve_ms_avg"] = warm_ms;
  rec.metrics["warm_starts"] = static_cast<double>(warm_starts);
  rec.metrics["basis_discards"] = static_cast<double>(basis_discards);
  rec.metrics["pooled_cuts"] = static_cast<double>(pool.size());
  return failed;
}

/// End-to-end: the §IV-B replan loop with the model cache on vs off —
/// what the service-level drift rounds actually pay per solve.
int BenchReplanLoop(bench::BenchJsonWriter* json) {
  int failed = 0;
  double wall[2] = {0.0, 0.0};
  int64_t patches = 0;
  for (int cached = 0; cached < 2; ++cached) {
    bench::ScenarioConfig config;
    config.hosts = 4;
    config.base_streams = 16;
    config.queries = 16;
    config.arities = {2};
    config.seed = kSeed;
    bench::Scenario scenario = bench::MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = 250;
    options.enable_model_cache = cached != 0;
    SqprPlanner planner(scenario.cluster.get(), scenario.catalog.get(),
                        options);
    for (int i = 0; i < 8; ++i) {
      SQPR_CHECK(planner.SubmitQuery(scenario.workload.queries[i]).ok());
    }
    Stopwatch watch;
    for (int round = 0; round < 6; ++round) {
      const std::vector<StreamId> admitted = planner.admitted_queries();
      for (StreamId q : admitted) {
        Result<std::vector<PlanningStats>> stats = planner.ReplanQueries({q});
        SQPR_CHECK(stats.ok()) << stats.status().ToString();
        if (stats->front().model_patched) ++patches;
      }
    }
    wall[cached] = watch.ElapsedMillis();
  }
  if (!bench::ShapeCheck(patches > 0, "replan loop hits the model cache")) {
    ++failed;
  }
  std::printf("replan loop uncached %8.1f ms   cached %8.1f ms   "
              "(model_patches=%lld)\n",
              wall[0], wall[1], static_cast<long long>(patches));
  bench::BenchRecord& rec = json->Add("replan_loop");
  rec.labels["rounds"] = "6";
  rec.metrics["uncached_wall_ms"] = wall[0];
  rec.metrics["cached_wall_ms"] = wall[1];
  rec.metrics["model_patches"] = static_cast<double>(patches);
  return failed;
}

}  // namespace
}  // namespace sqpr

int main(int argc, char** argv) {
  std::string json_path;
  if (!sqpr::bench::ParseBenchArgs(argc, argv, &json_path)) return 2;

  sqpr::bench::PrintHeader(
      "solver_micro",
      "incremental solves: model build vs patch, cold vs warm start",
      sqpr::kSeed);
  sqpr::bench::BenchJsonWriter json("solver_micro", sqpr::kSeed);

  int failed = 0;
  {
    std::unique_ptr<sqpr::Fixture> fixture = sqpr::MakeFixture();
    failed += sqpr::BenchBuildVsPatch(fixture.get(), &json);
    failed += sqpr::BenchColdVsWarm(fixture.get(), &json);
  }
  failed += sqpr::BenchReplanLoop(&json);

  if (!json_path.empty() && !json.WriteFile(json_path, failed)) return 1;
  return failed == 0 ? 0 : 1;
}
