// Fig. 4(a): planning efficiency — satisfied vs submitted queries for
// SQPR under three solver timeouts, the greedy heuristic, and the
// optimistic aggregate-host bound.
//
// Paper setup: 50 hosts, 500 base streams, timeouts 5/30/60 s.
// Scaled setup: 6 hosts, 48 base streams, timeouts 80/320/1280 ms.
// Expected shape: SQPR(any timeout) >= heuristic, larger timeouts admit
// at least as much, everything <= bound, SQPR within ~25% of the bound.

#include <vector>

#include "bench/bench_util.h"
#include "planner/heuristic/heuristic_planner.h"
#include "planner/optimistic/optimistic_bound.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  ScenarioConfig config;
  PrintHeader("Fig 4(a)", "planning efficiency: satisfied vs input queries",
              config.seed);

  const std::vector<int64_t> timeouts_ms = {80, 320, 1280};
  std::vector<std::vector<int>> sqpr_admitted(timeouts_ms.size());
  std::vector<int> heuristic_admitted, bound_admitted;

  // Separate catalogs/planners per configuration, identical workloads.
  for (size_t t = 0; t < timeouts_ms.size(); ++t) {
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = timeouts_ms[t];
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
    int admitted = 0;
    for (StreamId q : s.workload.queries) {
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      admitted += stats->admitted && !stats->already_served;
      sqpr_admitted[t].push_back(admitted);
    }
  }
  {
    Scenario s = MakeScenario(config);
    HeuristicPlanner planner(s.cluster.get(), s.catalog.get(), {});
    int admitted = 0;
    for (StreamId q : s.workload.queries) {
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      admitted += stats->admitted && !stats->already_served;
      heuristic_admitted.push_back(admitted);
    }
  }
  {
    Scenario s = MakeScenario(config);
    // Full-closure credit: provably above any planner (the chosen-tree
    // variant is tighter but a replanning planner can legitimately beat
    // it by materialising reuse-friendlier trees).
    OptimisticBound bound(*s.cluster, s.catalog.get(),
                          OptimisticBound::ReuseCredit::kFullClosure);
    int prev = 0;
    for (StreamId q : s.workload.queries) {
      auto r = bound.SubmitQuery(q);
      SQPR_CHECK(r.ok());
      (void)prev;
      bound_admitted.push_back(bound.admitted_count());
    }
  }

  std::printf("# submitted  bound  sqpr_1280ms  sqpr_320ms  sqpr_80ms  heuristic\n");
  for (size_t i = 9; i < sqpr_admitted[0].size(); i += 10) {
    std::printf("%10zu  %5d  %11d  %10d  %9d  %9d\n", i + 1,
                bound_admitted[i], sqpr_admitted[2][i], sqpr_admitted[1][i],
                sqpr_admitted[0][i], heuristic_admitted[i]);
  }

  const int last = static_cast<int>(sqpr_admitted[0].size()) - 1;
  ShapeCheck(sqpr_admitted[2][last] >= heuristic_admitted[last],
             "SQPR(1280ms) admits at least as many queries as the heuristic");
  ShapeCheck(sqpr_admitted[2][last] + 2 >= sqpr_admitted[0][last],
             "longer timeout admits at least as much as the short one "
             "(small tolerance: fallback interplay adds noise)");
  ShapeCheck(sqpr_admitted[2][last] <= bound_admitted[last],
             "SQPR stays below the optimistic bound");
  ShapeCheck(sqpr_admitted[2][last] >=
                 static_cast<int>(0.75 * bound_admitted[last]),
             "SQPR within ~25% of the optimistic bound (paper: <25% gap)");
  return 0;
}
