// §VII extension ablation: flat SQPR vs the hierarchical (site-based)
// planner as the cluster grows. The paper proposes the decomposition to
// fix the Fig. 6(a) blow-up of planning time in the number of hosts;
// this bench regenerates that trade-off: hierarchical planning time
// stays near-flat in H while admissions pay a bounded price for the
// restricted placement freedom.

#include <vector>

#include "bench/bench_util.h"
#include "planner/hierarchical/hierarchical_planner.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  PrintHeader("Hierarchical ablation (§VII)",
              "flat vs site-decomposed planning as hosts grow", 1);

  const std::vector<int> host_counts = {4, 8, 12};
  std::printf(
      "# hosts  sites  flat_adm  hier_adm  flat_ms/query  hier_ms/query\n");

  std::vector<double> flat_ms, hier_ms;
  std::vector<int> flat_adm, hier_adm;
  for (int hosts : host_counts) {
    ScenarioConfig config;
    config.hosts = hosts;
    config.base_streams = 8 * hosts;
    config.queries = 15 * hosts;

    // Flat SQPR (fallback off for a like-for-like MILP comparison).
    Scenario sf = MakeScenario(config);
    SqprPlanner::Options flat_options;
    flat_options.timeout_ms = 250;
    flat_options.greedy_fallback = false;
    SqprPlanner flat(sf.cluster.get(), sf.catalog.get(), flat_options);
    int admitted_flat = 0;
    double ms_flat = 0.0;
    int solves = 0;
    for (StreamId q : sf.workload.queries) {
      auto stats = flat.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      if (!stats->already_served) {
        ms_flat += stats->wall_ms;
        ++solves;
      }
      admitted_flat += stats->admitted && !stats->already_served;
    }
    ms_flat /= std::max(1, solves);

    // Hierarchical: one site per ~4 hosts.
    Scenario sh = MakeScenario(config);
    HierarchicalPlanner::Options hier_options;
    hier_options.num_sites = std::max(1, hosts / 4);
    hier_options.timeout_ms = 250;
    HierarchicalPlanner hier(sh.cluster.get(), sh.catalog.get(),
                             hier_options);
    int admitted_hier = 0;
    double ms_hier = 0.0;
    solves = 0;
    for (StreamId q : sh.workload.queries) {
      auto stats = hier.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      if (!stats->already_served) {
        ms_hier += stats->wall_ms;
        ++solves;
      }
      admitted_hier += stats->admitted && !stats->already_served;
    }
    ms_hier /= std::max(1, solves);

    std::printf("%7d  %5d  %8d  %8d  %13.1f  %13.1f\n", hosts,
                hier_options.num_sites, admitted_flat, admitted_hier,
                ms_flat, ms_hier);
    flat_ms.push_back(ms_flat);
    hier_ms.push_back(ms_hier);
    flat_adm.push_back(admitted_flat);
    hier_adm.push_back(admitted_hier);
  }

  ShapeCheck(hier_ms.back() < flat_ms.back(),
             "hierarchical plans faster than flat at the largest size");
  // Latency growth from smallest to largest cluster: hierarchical should
  // grow by a smaller factor than flat (the whole point of §VII).
  const double flat_growth = flat_ms.back() / std::max(1e-9, flat_ms.front());
  const double hier_growth = hier_ms.back() / std::max(1e-9, hier_ms.front());
  ShapeCheck(hier_growth < flat_growth,
             "hierarchical latency grows slower in hosts than flat");
  ShapeCheck(hier_adm.back() >= flat_adm.back() / 2,
             "admission loss from site restriction stays bounded (<2x)");
  return 0;
}
