// Fig. 6(a): planner overhead vs number of hosts — average planning time
// per query once the system sits at 75-95% CPU utilisation (the paper's
// hardest regime). The MILP grows quadratically in hosts (x variables),
// so planning time rises sharply and eventually saturates the timeout.
//
// Paper setup: 25-150 hosts, 100 s cap. Scaled: 2-8 hosts, 500 ms cap.

#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  PrintHeader("Fig 6(a)", "average planning time vs number of hosts", 1);
  const int64_t kTimeoutMs = 500;

  const std::vector<int> host_counts = {2, 4, 6, 8};
  std::vector<double> mean_ms, p95_ms;
  std::vector<double> utilization;

  for (int hosts : host_counts) {
    ScenarioConfig config;
    config.hosts = hosts;
    config.base_streams = 8 * hosts;
    config.queries = 40 * hosts;
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = kTimeoutMs;
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);

    RunningStats times;
    std::vector<double> samples;
    double total_cpu = s.cluster->TotalCpu();
    for (StreamId q : s.workload.queries) {
      const double used = planner.deployment().TotalCpuUsed();
      const bool in_regime = used >= 0.75 * total_cpu;
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      if (in_regime && !stats->already_served) {
        times.Add(stats->wall_ms);
        samples.push_back(stats->wall_ms);
      }
    }
    mean_ms.push_back(times.mean());
    p95_ms.push_back(Percentile(samples, 0.95));
    utilization.push_back(planner.deployment().TotalCpuUsed() / total_cpu);
  }

  std::printf("# hosts  mean_ms  p95_ms  final_cpu_util\n");
  for (size_t i = 0; i < host_counts.size(); ++i) {
    std::printf("%7d  %7.1f  %6.1f  %14.2f\n", host_counts[i], mean_ms[i],
                p95_ms[i], utilization[i]);
  }

  ShapeCheck(mean_ms.back() > 2.0 * mean_ms.front(),
             "planning time rises sharply with hosts (paper Fig 6a)");
  ShapeCheck(mean_ms.front() < kTimeoutMs * 0.5,
             "small systems solve well under the timeout");
  return 0;
}
