// Fig. 6(b): planner overhead vs query complexity — average planning
// time per query for pure k-way-join workloads, k = 2..5, measured at
// high utilisation on a fixed cluster. Complexity grows the reduced
// model (more subset streams/operators), but far more gently than the
// host count does: the paper's Fig 6(b) increase is a few seconds where
// Fig 6(a) reaches 100 s.
//
// Paper setup: 50 hosts. Scaled: 4 hosts, 500 ms cap.

#include <vector>

#include "bench/bench_util.h"
#include "common/stats.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  PrintHeader("Fig 6(b)", "average planning time vs query arity", 1);
  const int64_t kTimeoutMs = 500;

  const std::vector<int> arities = {2, 3, 4, 5};
  std::vector<double> mean_ms, p95_ms;

  for (int arity : arities) {
    ScenarioConfig config;
    config.hosts = 4;
    config.base_streams = 32;
    config.arities = {arity};
    config.queries = 60;
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = kTimeoutMs;
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);

    RunningStats times;
    std::vector<double> samples;
    const double total_cpu = s.cluster->TotalCpu();
    for (StreamId q : s.workload.queries) {
      const bool in_regime =
          planner.deployment().TotalCpuUsed() >= 0.5 * total_cpu;
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      if (in_regime && !stats->already_served) {
        times.Add(stats->wall_ms);
        samples.push_back(stats->wall_ms);
      }
    }
    mean_ms.push_back(times.mean());
    p95_ms.push_back(Percentile(samples, 0.95));
  }

  std::printf("# arity  mean_ms  p95_ms\n");
  for (size_t i = 0; i < arities.size(); ++i) {
    std::printf("%7d  %7.1f  %6.1f\n", arities[i], mean_ms[i], p95_ms[i]);
  }

  ShapeCheck(mean_ms.back() >= mean_ms.front(),
             "complex queries take at least as long to plan");
  ShapeCheck(mean_ms[0] < kTimeoutMs * 0.9 && mean_ms[1] < kTimeoutMs * 0.95,
             "2-/3-way workloads stay under the solver cap (saturation "
             "only at the largest arities)");
  return 0;
}
