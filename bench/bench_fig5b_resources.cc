// Fig. 5(b): scalability in resources — satisfiable queries vs CPU cores
// per host, with network capacities scaled 10x so CPU is the binding
// resource. The §IV-A problem reduction keeps the model size independent
// of the CPU budget, so SQPR stays near the optimistic bound throughout.
//
// Paper setup: 1-8 cores, 1->10 Gbps. Scaled: cores 1-8 on a 4-host
// cluster with 10x bandwidth.

#include <vector>

#include "bench/bench_util.h"
#include "planner/optimistic/optimistic_bound.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  PrintHeader("Fig 5(b)", "satisfiable queries vs CPU cores per host", 1);

  const std::vector<int> cores = {1, 2, 4, 8};
  std::vector<int> sqpr_admitted, bound_admitted;

  for (int core_count : cores) {
    ScenarioConfig config;
    config.hosts = 4;
    config.host_cpu = static_cast<double>(core_count);
    config.nic_mbps = 1200.0;   // 10x the baseline: network non-binding
    config.link_mbps = 2400.0;
    config.base_streams = 32;
    config.queries = 60 * core_count;
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = 80;
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
    int admitted = 0;
    for (StreamId q : s.workload.queries) {
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      admitted += stats->admitted && !stats->already_served;
    }
    sqpr_admitted.push_back(admitted);

    Scenario sb = MakeScenario(config);
    // Full-closure credit: provably above any planner (the chosen-tree
    // variant is tighter but a replanning planner can legitimately beat
    // it by materialising reuse-friendlier trees).
    OptimisticBound bound(*sb.cluster, sb.catalog.get(),
                          OptimisticBound::ReuseCredit::kFullClosure);
    for (StreamId q : sb.workload.queries) SQPR_CHECK(bound.SubmitQuery(q).ok());
    bound_admitted.push_back(bound.admitted_count());
  }

  std::printf("# cores  sqpr  optimistic_bound  sqpr/bound\n");
  for (size_t i = 0; i < cores.size(); ++i) {
    std::printf("%7d  %4d  %16d  %10.2f\n", cores[i], sqpr_admitted[i],
                bound_admitted[i],
                static_cast<double>(sqpr_admitted[i]) / bound_admitted[i]);
  }

  ShapeCheck(sqpr_admitted.back() > 2 * sqpr_admitted.front(),
             "admissions scale with CPU resources");
  const double worst_ratio = [&] {
    double worst = 1.0;
    for (size_t i = 0; i < cores.size(); ++i) {
      worst = std::min(worst, static_cast<double>(sqpr_admitted[i]) /
                                  bound_admitted[i]);
    }
    return worst;
  }();
  ShapeCheck(worst_ratio >= 0.7,
             "SQPR stays near the bound at every resource level "
             "(paper: near-optimal)");
  return 0;
}
