// Service churn bench: sustained load through the continuous
// PlanningService (no paper figure — this measures the event loop the
// paper assumes around the planner, §IV), in two scenarios:
//
//  * drift-heavy — arrival-heavy mix with steady departures, frequent
//    monitor drift reports and occasional host failures/rejoins: keeps
//    the re-planning rounds full, so the worker pool's solve offload
//    dominates.
//  * arrival-heavy — few evictions, lots of cache-miss arrivals while
//    rounds are in flight: measures the tentpole of the speculative
//    arrival path. Before it, every such arrival retired the whole
//    in-flight round (a solve-sized stall on the loop thread); now it
//    solves concurrently over the thread-safe catalog, which the
//    overlapped-arrival-solves counter makes visible.
//  * closed-loop — zero scripted monitor reports: the trace carries
//    ground-truth rate *trajectories* (constant/step/walk/periodic) and
//    the service measures its own committed deployment every few ticks
//    (§IV-C), detecting drift and dispatching re-planning rounds
//    entirely by itself (the auto_replan_rounds counter). The scenario
//    runs in BOTH measurement modes — engine (ClusterSim per measuring
//    tick) and analytic (ledger-derived) — and checks the analytic
//    per-measuring-tick cost undercuts the engine's by >= 5x.
//  * checkpoint-overhead — the durability tax (docs/ARCHITECTURE.md
//    §9): times ExportCheckpoint / WriteFileAtomic / RestoreCheckpoint
//    on the drift-heavy trace's final state and byte-checks the
//    restore round-trip.
//
// Each scenario replays one trace with 0, 1 and 4 workers solving the
// re-planning rounds; the drift-heavy scenario additionally replays at
// pipeline depths 1 and 4 (the default elsewhere is 2). The solver is
// node-bounded (large wall deadline + fixed branch-and-bound budget),
// so every replay is deterministic and all of them must commit
// bit-for-bit identical deployments — the worker count and pipeline
// depth may only change how much solve time overlaps event processing.
// Expected shape: every replay consumes the whole trace, survives the
// failures, finishes with identical valid committed deployments and
// identical admission statistics, the plan cache absorbs repeat
// arrivals (and maintains itself incrementally on additive commits),
// per-event latency stays bounded, arrival solves overlap in-flight
// rounds, and (given the cores) workers raise throughput.
//
// With --json <path>, every (scenario, workers, mode) run is appended
// to a machine-readable record set (see bench_util.h) — the perf
// trajectory checked in as BENCH_service.json via tools/run_bench.sh.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/deadline.h"
#include "common/stats.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/checkpoint.h"
#include "service/planning_service.h"
#include "workload/trace.h"

using namespace sqpr;
using namespace sqpr::bench;

namespace {

struct RunResult {
  double total_ms = 0.0;
  double max_event_ms = 0.0;
  double events_per_s = 0.0;
  ServiceStats stats;
  std::string fingerprint;
  int64_t cache_hits = 0;
  int64_t cache_rebuilds = 0;
  int64_t cache_noop_skips = 0;
  size_t trace_events = 0;
  bool audit_ok = false;
  // Decision audit journal renderings (src/obs/audit.h): the canonical
  // stratum must be byte-identical across worker counts and pipeline
  // depths; the full rendering adds speculative records + wall timings.
  std::string audit_canonical;
  std::string audit_full;
  size_t audit_records = 0;
  size_t audit_canonical_records = 0;
};

RunResult Replay(const TraceConfig& trace_config, int workers,
                 bool closed_loop = false,
                 MeasureMode mode = MeasureMode::kEngine,
                 int pipeline_depth = 2,
                 const std::string& metrics_series_path = std::string()) {
  // Fresh scenario per replay: the drift reports install measured rates
  // into the catalog, so state must not leak between runs. Same seed =>
  // identical workload and trace.
  ScenarioConfig config;
  config.queries = 400;
  config.seed = 11;
  Scenario scenario = MakeScenario(config);

  Result<std::vector<Event>> trace = GenerateTrace(
      trace_config, scenario.workload, config.hosts, *scenario.catalog);
  SQPR_CHECK(trace.ok()) << trace.status().ToString();

  ServiceOptions options;
  // Determinism across worker counts requires a deterministic solver:
  // bound by node budget, not by wall clock.
  options.planner.timeout_ms = 60000;
  options.planner.max_nodes = 200;
  options.replan.workers = workers;
  options.replan.pipeline_depth = pipeline_depth;
  options.closed_loop = closed_loop;
  options.telemetry.mode = mode;
  options.telemetry.measure_period = 3;
  options.telemetry.seed = trace_config.seed;
  options.telemetry.ewma_alpha = 0.6;
  options.telemetry.noise = 0.03;
  // Every replay journals its decisions: the cross-run byte-identity
  // shape checks below are the bench-side enforcement of the canonical
  // stratum's worker/depth invariance.
  obs::AuditJournal journal;
  options.audit = &journal;
  PlanningService service(scenario.cluster.get(), scenario.catalog.get(),
                          options);
  for (const Event& e : *trace) {
    SQPR_CHECK_OK(service.Enqueue(e));
  }

  // Periodic metrics exposition for the instrumented replay (CI uploads
  // the series next to the trace + audit artifacts): sample on 1000
  // virtual-ms boundaries, cumulative + per-interval delta per line.
  obs::MetricsRegistry registry;
  ServiceMetricsPublisher publisher(&registry);
  const bool want_series = !metrics_series_path.empty();
  constexpr int64_t kSeriesIntervalMs = 1000;
  std::string series;
  obs::MetricsSnapshot prev;
  int64_t next_sample_ms = kSeriesIntervalMs;
  const auto sample_series = [&](int64_t t_ms) {
    publisher.Publish(service.stats());
    obs::MetricsSnapshot cum = registry.TakeSnapshot();
    const obs::MetricsSnapshot delta = cum.DeltaSince(prev);
    series += "{\"t_ms\":" + std::to_string(t_ms) + ",\"cum\":" +
              cum.ToJson() + ",\"delta\":" + delta.ToJson() + "}\n";
    prev = std::move(cum);
  };
  if (want_series) {
    series += "{\"schema\":\"sqpr-metrics-series-v1\",\"interval_ms\":" +
              std::to_string(kSeriesIntervalMs) + "}\n";
  }

  RunResult result;
  result.trace_events = trace->size();
  Stopwatch watch;
  while (service.HasPendingEvents()) {
    Result<EventOutcome> outcome = service.Step();
    SQPR_CHECK(outcome.ok()) << outcome.status().ToString();
    result.max_event_ms = std::max(result.max_event_ms, outcome->wall_ms);
    if (want_series) {
      while (service.clock().now_ms() >= next_sample_ms) {
        sample_series(next_sample_ms);
        next_sample_ms += kSeriesIntervalMs;
      }
    }
  }
  service.FinishInFlightRound();
  service.FinalizeAudit();
  result.total_ms = watch.ElapsedMillis();
  result.events_per_s = 1000.0 * trace->size() / result.total_ms;
  result.stats = service.stats();
  result.fingerprint = service.deployment().Fingerprint();
  result.cache_hits = service.plan_cache().hits();
  result.cache_rebuilds = service.plan_cache().rebuilds();
  result.cache_noop_skips = service.plan_cache().noop_skips();
  result.audit_ok = service.deployment().Validate().ok();
  result.audit_canonical = journal.ToJsonl(/*canonical=*/true);
  result.audit_full = journal.ToJsonl(/*canonical=*/false);
  result.audit_records = journal.size();
  result.audit_canonical_records = journal.canonical_size();
  if (want_series) {
    // Final sample after the pipeline drains: the series always ends
    // with the run's complete totals.
    sample_series(service.clock().now_ms());
    std::FILE* f = std::fopen(metrics_series_path.c_str(), "wb");
    SQPR_CHECK(f != nullptr) << "cannot open " << metrics_series_path;
    std::fwrite(series.data(), 1, series.size(), f);
    std::fclose(f);
  }
  return result;
}

void PrintRun(const char* label, const RunResult& r) {
  std::printf("\n[%s] %zu events in %.1f ms (%.1f events/s), "
              "max event %.1f ms\n",
              label, r.trace_events, r.total_ms, r.events_per_s,
              r.max_event_ms);
  const ServiceStats& s = r.stats;
  std::printf("  arrivals %lld: admitted %lld (dedup %lld, cache %lld), "
              "rejected %lld; %lld solves overlapped in-flight rounds\n",
              static_cast<long long>(s.arrivals),
              static_cast<long long>(s.admitted),
              static_cast<long long>(s.dedup_hits),
              static_cast<long long>(s.cache_fast_path),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.overlapped_arrival_solves));
  std::printf("  churn: %lld departures, %lld failures, %lld joins, "
              "%lld drift reports; %lld evictions, %lld/%lld re-admitted\n",
              static_cast<long long>(s.departures),
              static_cast<long long>(s.host_failures),
              static_cast<long long>(s.host_joins),
              static_cast<long long>(s.monitor_reports),
              static_cast<long long>(s.evictions),
              static_cast<long long>(s.replanned_admitted),
              static_cast<long long>(s.replanned_admitted +
                                     s.replanned_rejected));
  std::printf("  rounds: %lld committed (%lld dispatched, %lld commit "
              "conflicts re-solved, %lld unwound at barriers)\n",
              static_cast<long long>(s.replan_rounds),
              static_cast<long long>(s.replan_dispatches),
              static_cast<long long>(s.commit_conflicts),
              static_cast<long long>(s.round_unwinds));
  if (s.solve_ms.count() > 0) {
    std::printf("  solver wall-time: %zu solves, p50 %.2f ms, p90 %.2f ms, "
                "p99 %.2f ms, max %.2f ms\n",
                s.solve_ms.count(), s.solve_ms.Quantile(0.50),
                s.solve_ms.Quantile(0.90), s.solve_ms.Quantile(0.99),
                s.solve_ms.max());
  }
  std::printf("  loop-thread barrier waits: %zu, avg %.2f ms, max %.2f ms\n",
              s.barrier_ms.count(), s.barrier_ms.mean(), s.barrier_ms.max());
  std::printf("  reuse index: %lld incremental delta updates, %lld full "
              "rebuilds, %lld no-op skips\n",
              static_cast<long long>(s.cache_delta_updates),
              static_cast<long long>(r.cache_rebuilds),
              static_cast<long long>(r.cache_noop_skips));
  if (s.replan_dispatches > 0) {
    std::printf("  snapshots: %lld bytes copied on the loop thread across "
                "%lld dispatches (%lld rebases)\n",
                static_cast<long long>(s.snapshot_bytes_copied),
                static_cast<long long>(s.replan_dispatches),
                static_cast<long long>(s.snapshot_rebases));
  }
  if (s.rate_directives + s.measurement_ticks > 0) {
    std::printf("  closed loop: %lld rate directives, %lld measurement "
                "ticks (%lld analytic), %lld auto re-plan rounds; "
                "per-measuring-tick cost avg %.3f ms, max %.3f ms\n",
                static_cast<long long>(s.rate_directives),
                static_cast<long long>(s.measurement_ticks),
                static_cast<long long>(s.analytic_ticks),
                static_cast<long long>(s.auto_replan_rounds),
                s.measure_ms.mean(), s.measure_ms.max());
  }
}

void AddRecord(BenchJsonWriter* json, const char* scenario, int workers,
               const char* mode, const RunResult& r, int pipeline_depth = 2) {
  if (json == nullptr) return;
  BenchRecord& rec = json->Add(scenario);
  rec.labels["workers"] = std::to_string(workers);
  rec.labels["measure_mode"] = mode;
  rec.labels["pipeline_depth"] = std::to_string(pipeline_depth);
  const ServiceStats& s = r.stats;
  auto& m = rec.metrics;
  m["wall_ms"] = r.total_ms;
  m["events_per_s"] = r.events_per_s;
  m["max_event_ms"] = r.max_event_ms;
  m["solver_p50_ms"] = s.solve_ms.Quantile(0.50);
  m["solver_p95_ms"] = s.solve_ms.Quantile(0.95);
  m["solver_p99_ms"] = s.solve_ms.Quantile(0.99);
  m["solver_samples"] = static_cast<double>(s.solve_ms.count());
  m["admitted"] = static_cast<double>(s.admitted);
  m["rejected"] = static_cast<double>(s.rejected);
  m["evictions"] = static_cast<double>(s.evictions);
  m["replan_rounds"] = static_cast<double>(s.replan_rounds);
  m["overlapped_arrival_solves"] =
      static_cast<double>(s.overlapped_arrival_solves);
  m["commit_conflicts"] = static_cast<double>(s.commit_conflicts);
  m["round_unwinds"] = static_cast<double>(s.round_unwinds);
  m["cache_delta_updates"] = static_cast<double>(s.cache_delta_updates);
  m["cache_rebuilds"] = static_cast<double>(r.cache_rebuilds);
  m["cache_noop_skips"] = static_cast<double>(r.cache_noop_skips);
  m["snapshot_bytes_copied"] = static_cast<double>(s.snapshot_bytes_copied);
  m["snapshot_rebases"] = static_cast<double>(s.snapshot_rebases);
  m["measurement_ticks"] = static_cast<double>(s.measurement_ticks);
  m["analytic_ticks"] = static_cast<double>(s.analytic_ticks);
  m["auto_replan_rounds"] = static_cast<double>(s.auto_replan_rounds);
  m["measure_ms_avg"] = s.measure_ms.mean();
  m["measure_ms_max"] = s.measure_ms.max();
  m["measure_ms_p99"] = s.measure_ms.Quantile(0.99);
  m["audit_records"] = static_cast<double>(r.audit_records);
  m["audit_canonical_records"] =
      static_cast<double>(r.audit_canonical_records);
}

bool DeterminismChecks(const char* scenario, const RunResult& zero,
                       const RunResult& one, const RunResult& four) {
  bool ok = true;
  std::printf("\n-- %s: worker-count invariance --\n", scenario);
  ok &= ShapeCheck(zero.stats.events ==
                           static_cast<int64_t>(zero.trace_events) &&
                       one.stats.events ==
                           static_cast<int64_t>(one.trace_events) &&
                       four.stats.events ==
                           static_cast<int64_t>(four.trace_events),
                   "every trace event consumed in all three replays");
  ok &= ShapeCheck(zero.audit_ok && one.audit_ok && four.audit_ok,
                   "final committed deployments validate");
  ok &= ShapeCheck(zero.fingerprint == one.fingerprint &&
                       zero.fingerprint == four.fingerprint,
                   "worker count does not change committed deployments");
  ok &= ShapeCheck(zero.audit_canonical_records > 0 &&
                       zero.audit_canonical == one.audit_canonical &&
                       zero.audit_canonical == four.audit_canonical,
                   "canonical audit journal byte-identical across worker "
                   "counts");
  ok &= ShapeCheck(
      zero.stats.admitted == one.stats.admitted &&
          zero.stats.admitted == four.stats.admitted &&
          zero.stats.rejected == one.stats.rejected &&
          zero.stats.rejected == four.stats.rejected &&
          zero.stats.replanned_admitted == one.stats.replanned_admitted &&
          zero.stats.replanned_admitted == four.stats.replanned_admitted &&
          zero.stats.overlapped_arrival_solves ==
              one.stats.overlapped_arrival_solves &&
          zero.stats.overlapped_arrival_solves ==
              four.stats.overlapped_arrival_solves &&
          zero.stats.measurement_ticks == one.stats.measurement_ticks &&
          zero.stats.measurement_ticks == four.stats.measurement_ticks &&
          zero.stats.auto_replan_rounds == one.stats.auto_replan_rounds &&
          zero.stats.auto_replan_rounds == four.stats.auto_replan_rounds,
      "worker count does not change admission statistics");
  ok &= ShapeCheck(
      zero.max_event_ms <= std::max(1000.0, zero.total_ms / 4) &&
          one.max_event_ms <= std::max(1000.0, one.total_ms / 4) &&
          four.max_event_ms <= std::max(1000.0, four.total_ms / 4),
      "per-event latency bounded (no event monopolised loop)");
  return ok;
}

// Checkpoint overhead (docs/ARCHITECTURE.md §9): the cost of making
// the service crash-durable, measured on the state the drift-heavy
// trace leaves behind. Three phases are timed separately because they
// bound different things: ExportCheckpoint bounds the event-loop stall
// a periodic checkpoint inserts (the first call additionally pays the
// pipeline barrier + accounting refresh, so it is reported on its
// own), WriteFileAtomic bounds the filesystem cost of the
// write-fsync-rename protocol, and RestoreCheckpoint bounds recovery
// time after a crash. The round-trip check mirrors the durability
// suite's restore property: exporting from the restored service must
// reproduce, byte for byte, what the original service would have
// exported next (each export bumps the deployment version by one, so
// the reference is the original's *subsequent* export, not the
// restored document itself).
bool RunCheckpointOverhead(BenchJsonWriter* json,
                           const TraceConfig& trace_config) {
  ScenarioConfig config;
  config.queries = 400;
  config.seed = 11;
  Scenario scenario = MakeScenario(config);
  Result<std::vector<Event>> trace = GenerateTrace(
      trace_config, scenario.workload, config.hosts, *scenario.catalog);
  SQPR_CHECK(trace.ok()) << trace.status().ToString();

  ServiceOptions options;
  options.planner.timeout_ms = 60000;
  options.planner.max_nodes = 200;
  options.replan.workers = 0;
  PlanningService service(scenario.cluster.get(), scenario.catalog.get(),
                          options);
  for (const Event& e : *trace) {
    SQPR_CHECK_OK(service.Enqueue(e));
  }
  SQPR_CHECK_OK(service.RunUntilIdle());

  constexpr int kReps = 8;
  Stopwatch sw;
  Result<std::string> doc = service.ExportCheckpoint();
  SQPR_CHECK(doc.ok()) << doc.status().ToString();
  const double export_first_ms = sw.ElapsedMillis();
  double export_total_ms = 0.0;
  for (int i = 0; i < kReps; ++i) {
    sw.Reset();
    doc = service.ExportCheckpoint();
    export_total_ms += sw.ElapsedMillis();
    SQPR_CHECK(doc.ok()) << doc.status().ToString();
  }

  const std::string path =
      "/tmp/sqpr_bench_ckpt_" + std::to_string(::getpid()) + ".json";
  double write_total_ms = 0.0;
  for (int i = 0; i < kReps; ++i) {
    sw.Reset();
    const Status written = WriteFileAtomic(path, *doc);
    write_total_ms += sw.ElapsedMillis();
    SQPR_CHECK(written.ok()) << written.ToString();
  }
  Result<std::string> read_back = ReadFileToString(path);
  SQPR_CHECK(read_back.ok()) << read_back.status().ToString();
  std::remove(path.c_str());

  // Reference for the round-trip check: what the original service
  // exports next (one version bump past `doc`).
  Result<std::string> reference = service.ExportCheckpoint();
  SQPR_CHECK(reference.ok()) << reference.status().ToString();

  Scenario fresh = MakeScenario(config);
  PlanningService restored(fresh.cluster.get(), fresh.catalog.get(), options);
  sw.Reset();
  const Status restore = restored.RestoreCheckpoint(*doc);
  const double restore_ms = sw.ElapsedMillis();
  SQPR_CHECK(restore.ok()) << restore.ToString();
  Result<std::string> round_trip = restored.ExportCheckpoint();
  SQPR_CHECK(round_trip.ok()) << round_trip.status().ToString();

  const double export_ms_avg = export_total_ms / kReps;
  const double write_ms_avg = write_total_ms / kReps;
  std::printf("  checkpoint: %zu bytes; export first %.2f ms (pays the "
              "round barrier), steady avg %.2f ms; atomic write avg "
              "%.2f ms; restore %.2f ms\n",
              doc->size(), export_first_ms, export_ms_avg, write_ms_avg,
              restore_ms);

  bool ok = true;
  ok &= ShapeCheck(doc->size() > 0 && *read_back == *doc,
                   "atomic write-rename round-trips the checkpoint bytes");
  ok &= ShapeCheck(*round_trip == *reference,
                   "restored service exports byte-for-byte what the "
                   "original would export next");
  ok &= ShapeCheck(restored.stats().events == service.stats().events &&
                       restored.stats().admitted == service.stats().admitted,
                   "restore reinstates the serialized counters");

  if (json != nullptr) {
    BenchRecord& rec = json->Add("checkpoint-overhead");
    rec.labels["workers"] = "0";
    rec.labels["measure_mode"] = "none";
    rec.labels["pipeline_depth"] = "2";
    auto& m = rec.metrics;
    m["checkpoint_bytes"] = static_cast<double>(doc->size());
    m["export_first_ms"] = export_first_ms;
    m["export_ms_avg"] = export_ms_avg;
    m["write_ms_avg"] = write_ms_avg;
    m["restore_ms"] = restore_ms;
    m["events"] = static_cast<double>(service.stats().events);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_out;
  std::string audit_out;
  std::string metrics_series_out;
  if (!ParseBenchArgs(argc, argv, &json_path, &trace_out, &audit_out,
                      &metrics_series_out)) {
    return 2;
  }

  PrintHeader("Service churn",
              "event-driven admission / drift re-planning / speculative "
              "arrivals, 0 vs 1 vs 4 workers",
              11);
  BenchJsonWriter json("service_churn", 11);
  BenchJsonWriter* jout = json_path.empty() ? nullptr : &json;

  // ---- Scenario 1: drift-heavy (re-planning rounds stay full). ----
  TraceConfig drifty;
  drifty.num_events = 300;
  drifty.seed = 11;
  drifty.min_failures = 2;
  drifty.min_drift_reports = 8;
  drifty.drift_weight = 0.20;

  std::printf("\n==== scenario: drift-heavy ====\n");
  const RunResult d0 = Replay(drifty, /*workers=*/0);
  PrintRun("workers=0", d0);
  const RunResult d1 = Replay(drifty, /*workers=*/1);
  PrintRun("workers=1", d1);
  // The workers=4 replay is the flight-recorder capture target: the
  // worst solver-tail configuration (see BENCH_service.json), so the
  // committed trace explains exactly the rounds worth profiling.
  // Tracing reads clocks and writes thread-local rings only — the
  // determinism checks below still compare this replay's deployment
  // fingerprint against the untraced workers=0/1 replays.
  if (!trace_out.empty()) {
    // 8K spans/thread keeps the committed artifact a few hundred KB
    // gzipped while retaining the most recent rounds end to end (the
    // full-capacity default would be ~10x larger for the same story).
    obs::TraceRecorder::Options trace_options;
    trace_options.per_thread_capacity = 8192;
    obs::TraceRecorder::Get().Enable(trace_options);
    obs::TraceRecorder::SetCurrentThreadName("loop");
  }
  // The same workers=4 replay is also the audit-journal and
  // metrics-series capture target, so the three CI artifacts (trace,
  // audit, series) all explain one replay and join on its timeline.
  const RunResult d4 = Replay(drifty, /*workers=*/4, /*closed_loop=*/false,
                              MeasureMode::kEngine, /*pipeline_depth=*/2,
                              metrics_series_out);
  if (!trace_out.empty()) {
    obs::TraceRecorder::Get().Disable();
    const Status written =
        obs::TraceRecorder::Get().WriteChromeTrace(trace_out);
    SQPR_CHECK(written.ok()) << written.ToString();
    std::printf("\nwrote flight-recorder trace (drift-heavy, workers=4): "
                "%s\n",
                trace_out.c_str());
  }
  if (!audit_out.empty()) {
    std::FILE* f = std::fopen(audit_out.c_str(), "wb");
    SQPR_CHECK(f != nullptr) << "cannot open " << audit_out;
    std::fwrite(d4.audit_full.data(), 1, d4.audit_full.size(), f);
    std::fclose(f);
    std::printf("\nwrote audit journal (drift-heavy, workers=4): %s "
                "(%zu records, %zu canonical)\n",
                audit_out.c_str(), d4.audit_records,
                d4.audit_canonical_records);
  }
  if (!metrics_series_out.empty()) {
    std::printf("wrote metrics series (drift-heavy, workers=4): %s\n",
                metrics_series_out.c_str());
  }
  PrintRun("workers=4", d4);
  std::printf("\nspeedup (events/s, 4 vs 0 workers): %.2fx\n",
              d4.events_per_s / d0.events_per_s);
  AddRecord(jout, "drift-heavy", 0, "none", d0);
  AddRecord(jout, "drift-heavy", 1, "none", d1);
  AddRecord(jout, "drift-heavy", 4, "none", d4);

  // ---- Scenario 1b: the same drift-heavy trace across pipeline
  // depths (d0/d1/d4 above ran the default depth 2). Depth moves round
  // dispatches earlier without moving any commit point, so the
  // committed deployments must stay bit-identical while a deeper
  // pipeline buys solve/event overlap at the price of speculative
  // waste (commit conflicts, barrier unwinds). ----
  std::printf("\n==== scenario: drift-heavy, pipeline depths ====\n");
  const RunResult p1 = Replay(drifty, /*workers=*/4, /*closed_loop=*/false,
                              MeasureMode::kEngine, /*pipeline_depth=*/1);
  PrintRun("workers=4 depth=1", p1);
  const RunResult p4 = Replay(drifty, /*workers=*/4, /*closed_loop=*/false,
                              MeasureMode::kEngine, /*pipeline_depth=*/4);
  PrintRun("workers=4 depth=4", p4);
  std::printf("\nevents/s by depth (workers=4): depth1 %.1f, depth2 %.1f, "
              "depth4 %.1f\n",
              p1.events_per_s, d4.events_per_s, p4.events_per_s);
  AddRecord(jout, "drift-heavy", 4, "none", p1, /*pipeline_depth=*/1);
  AddRecord(jout, "drift-heavy", 4, "none", p4, /*pipeline_depth=*/4);

  // ---- Scenario 2: arrival-heavy (the speculative-arrival stall
  // removal: cache-miss arrivals solving while rounds are in flight,
  // instead of retiring them first). ----
  TraceConfig arrivally;
  arrivally.num_events = 300;
  arrivally.seed = 23;
  arrivally.arrival_weight = 1.0;
  arrivally.departure_weight = 0.30;
  arrivally.drift_weight = 0.10;  // enough evictions to keep rounds live
  arrivally.failure_weight = 0.02;
  arrivally.min_failures = 1;
  arrivally.min_drift_reports = 6;

  std::printf("\n==== scenario: arrival-heavy ====\n");
  const RunResult a0 = Replay(arrivally, /*workers=*/0);
  PrintRun("workers=0", a0);
  const RunResult a1 = Replay(arrivally, /*workers=*/1);
  PrintRun("workers=1", a1);
  const RunResult a4 = Replay(arrivally, /*workers=*/4);
  PrintRun("workers=4", a4);
  std::printf("\nspeedup (events/s, 1 vs 0 workers): %.2fx — round solves "
              "move off the loop thread and overlap arrival admission\n",
              a1.events_per_s / a0.events_per_s);
  AddRecord(jout, "arrival-heavy", 0, "none", a0);
  AddRecord(jout, "arrival-heavy", 1, "none", a1);
  AddRecord(jout, "arrival-heavy", 4, "none", a4);

  // ---- Scenario 3: closed-loop (§IV-C self-measurement: the trace
  // scripts ground-truth rate trajectories and *no* monitor reports;
  // drift detection and re-planning fire from the service's own
  // periodic measurements). ----
  TraceConfig closed;
  closed.num_events = 220;
  closed.seed = 31;
  closed.closed_loop = true;
  closed.tick_weight = 0.55;       // measurements ride ticks
  closed.drift_weight = 0.18;      // rate directives
  closed.min_drift_reports = 8;
  closed.min_failures = 1;

  std::printf("\n==== scenario: closed-loop (engine measurements) ====\n");
  const RunResult c0 = Replay(closed, /*workers=*/0, /*closed_loop=*/true);
  PrintRun("workers=0", c0);
  const RunResult c1 = Replay(closed, /*workers=*/1, /*closed_loop=*/true);
  PrintRun("workers=1", c1);
  const RunResult c4 = Replay(closed, /*workers=*/4, /*closed_loop=*/true);
  PrintRun("workers=4", c4);
  AddRecord(jout, "closed-loop", 0, "engine", c0);
  AddRecord(jout, "closed-loop", 1, "engine", c1);
  AddRecord(jout, "closed-loop", 4, "engine", c4);

  // ---- Scenario 3b: the same closed-loop trace under analytic
  // measurements — per-stream rates and per-host CPU derived from the
  // committed ledgers scaled by truth/estimate ratios, no ClusterSim
  // run. The per-measuring-tick cost comparison below is the tentpole
  // number. ----
  std::printf("\n==== scenario: closed-loop (analytic measurements) ====\n");
  const RunResult n0 = Replay(closed, /*workers=*/0, /*closed_loop=*/true,
                              MeasureMode::kAnalytic);
  PrintRun("workers=0", n0);
  const RunResult n1 = Replay(closed, /*workers=*/1, /*closed_loop=*/true,
                              MeasureMode::kAnalytic);
  PrintRun("workers=1", n1);
  const RunResult n4 = Replay(closed, /*workers=*/4, /*closed_loop=*/true,
                              MeasureMode::kAnalytic);
  PrintRun("workers=4", n4);
  AddRecord(jout, "closed-loop", 0, "analytic", n0);
  AddRecord(jout, "closed-loop", 1, "analytic", n1);
  AddRecord(jout, "closed-loop", 4, "analytic", n4);
  std::printf("\nper-measuring-tick cost: engine avg %.3f ms vs analytic "
              "avg %.4f ms (%.1fx)\n",
              c0.stats.measure_ms.mean(), n0.stats.measure_ms.mean(),
              n0.stats.measure_ms.mean() > 0
                  ? c0.stats.measure_ms.mean() / n0.stats.measure_ms.mean()
                  : 0.0);

  // ---- Scenario 4: checkpoint overhead (docs/ARCHITECTURE.md §9) —
  // the durability tax, measured on the drift-heavy trace's final
  // state: export (periodic event-loop stall), atomic write (fsync +
  // rename), restore (recovery time), with the restore round-trip
  // byte-checked against the original service. ----
  std::printf("\n==== scenario: checkpoint-overhead ====\n");
  const bool checkpoint_ok = RunCheckpointOverhead(jout, drifty);

  bool ok = checkpoint_ok;
  ok &= DeterminismChecks("drift-heavy", d0, d1, d4);
  ok &= DeterminismChecks("arrival-heavy", a0, a1, a4);
  ok &= DeterminismChecks("closed-loop[engine]", c0, c1, c4);
  ok &= DeterminismChecks("closed-loop[analytic]", n0, n1, n4);

  std::printf("\n-- drift-heavy: pipeline-depth invariance --\n");
  ok &= ShapeCheck(p1.audit_ok && p4.audit_ok,
                   "depth-1 and depth-4 committed deployments validate");
  ok &= ShapeCheck(p1.fingerprint == d4.fingerprint &&
                       p4.fingerprint == d4.fingerprint,
                   "pipeline depth does not change committed deployments");
  ok &= ShapeCheck(
      p1.stats.admitted == d4.stats.admitted &&
          p4.stats.admitted == d4.stats.admitted &&
          p1.stats.rejected == d4.stats.rejected &&
          p4.stats.rejected == d4.stats.rejected &&
          p1.stats.evictions == d4.stats.evictions &&
          p4.stats.evictions == d4.stats.evictions &&
          p1.stats.replanned_admitted == d4.stats.replanned_admitted &&
          p4.stats.replanned_admitted == d4.stats.replanned_admitted,
      "pipeline depth does not change admission statistics");
  ok &= ShapeCheck(p1.stats.round_unwinds == 0,
                   "depth 1 never unwinds (barriers only ever see the "
                   "oldest round)");
  ok &= ShapeCheck(p1.audit_canonical == d4.audit_canonical &&
                       p4.audit_canonical == d4.audit_canonical,
                   "canonical audit journal byte-identical across pipeline "
                   "depths (workers=4, depths 1/2/4)");

  std::printf("\n-- scenario-specific shape --\n");
  ok &= ShapeCheck(d0.stats.host_failures >= 2 &&
                       d0.stats.monitor_reports >= 8,
                   "drift-heavy trace exercised failures and drift");
  ok &= ShapeCheck(d0.stats.admitted > 0, "service admitted queries");
  ok &= ShapeCheck(d0.cache_hits > 0 && a0.cache_hits > 0,
                   "plan cache absorbed repeat/sub-query arrivals");
  ok &= ShapeCheck(a0.stats.overlapped_arrival_solves > 0,
                   "cache-miss arrivals solved while rounds were in flight "
                   "(the removed FinishInFlightRound stall)");
  ok &= ShapeCheck(c0.stats.monitor_reports == 0 &&
                       c0.stats.rate_directives >= 8,
                   "closed-loop trace scripts trajectories, zero monitor "
                   "reports");
  ok &= ShapeCheck(c0.stats.measurement_ticks > 0,
                   "closed loop performed periodic self-measurements");
  ok &= ShapeCheck(c0.stats.auto_replan_rounds > 0,
                   "self-measured drift triggered re-planning with no "
                   "scripted measurement anywhere in the trace");
  ok &= ShapeCheck(n0.stats.analytic_ticks == n0.stats.measurement_ticks &&
                       n0.stats.measurement_ticks ==
                           c0.stats.measurement_ticks &&
                       c0.stats.analytic_ticks == 0,
                   "analytic replay measured on the same ticks, engine "
                   "replay never took the analytic path");
  ok &= ShapeCheck(n0.stats.auto_replan_rounds > 0,
                   "analytic measurements detected drift and triggered "
                   "re-planning too");
  // Per-tick means come from ~20 samples per replay; a scheduler
  // descheduling spike on one tick could inflate a single replay's
  // mean. Taking the minimum mean across the three replays of each
  // mode (a spike hits at most one) keeps the >= 5x gate robust on a
  // loaded host — the true margin is ~20x.
  const double engine_tick_ms =
      std::min({c0.stats.measure_ms.mean(), c1.stats.measure_ms.mean(),
                c4.stats.measure_ms.mean()});
  const double analytic_tick_ms =
      std::min({n0.stats.measure_ms.mean(), n1.stats.measure_ms.mean(),
                n4.stats.measure_ms.mean()});
  ok &= ShapeCheck(
      analytic_tick_ms > 0 && engine_tick_ms >= 5.0 * analytic_tick_ms,
      "analytic mode cuts per-measuring-tick cost >= 5x vs engine mode");
  ok &= ShapeCheck(d0.stats.cache_delta_updates > 0 &&
                       a0.stats.cache_delta_updates > 0,
                   "reuse index maintained by incremental deltas on "
                   "additive commits (not only full rebuilds)");
  ok &= ShapeCheck(d4.stats.replan_dispatches > 0 &&
                       d4.stats.snapshot_bytes_copied > 0 &&
                       d4.stats.snapshot_rebases <= d4.stats.replan_dispatches,
                   "worker rounds dispatched against copy-on-write "
                   "snapshots (bytes copied, rebases amortised)");
  // The parallel win needs parallel hardware: the rounds are CPU-bound
  // MILP solves, so with fewer cores than solver threads (+ the loop
  // thread) they partly time-slice and scheduling noise can swamp the
  // short trace. Gate the throughput checks on core count, and leave a
  // 10% noise margin so a loaded CI host does not fail a correct build
  // (the speedup itself is printed above for eyeballing).
  if (std::thread::hardware_concurrency() >= 4) {
    ok &= ShapeCheck(d4.events_per_s > 0.9 * d0.events_per_s,
                     "4 workers at least match inline rounds on a "
                     "drift-heavy trace");
    // The pipelined rounds' point: starting the next round's solves
    // before the previous round committed must never cost throughput
    // (same 10% noise margin as the worker checks; the win itself is
    // printed above). Below 4 cores the workers=4 replays time-slice
    // and the comparison measures scheduler noise, so it is skipped
    // with the other parallel-win checks.
    ok &= ShapeCheck(d4.events_per_s > 0.9 * p1.events_per_s &&
                         p4.events_per_s > 0.9 * p1.events_per_s,
                     "pipelined rounds (depth >= 2) at least match depth 1 "
                     "on the drift-heavy trace");
  } else {
    std::printf("shape-check [SKIP] 4 workers vs inline rounds "
                "(host has < 4 cores)\n");
    std::printf("shape-check [SKIP] pipeline depth >= 2 vs depth 1 "
                "(host has < 4 cores)\n");
  }
  if (std::thread::hardware_concurrency() >= 2) {
    ok &= ShapeCheck(a1.events_per_s > 0.9 * a0.events_per_s,
                     "1 worker at least matches inline rounds on an "
                     "arrival-heavy trace (overlapped arrival solves)");
  } else {
    std::printf("shape-check [SKIP] 1 worker vs inline rounds "
                "(host has < 2 cores)\n");
  }

  if (jout != nullptr && !json.WriteFile(json_path, ok ? 0 : 1)) {
    return 1;
  }
  return ok ? 0 : 1;
}
