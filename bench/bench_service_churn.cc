// Service churn bench: sustained arrival/departure/failure/drift load
// through the continuous PlanningService (no paper figure — this
// measures the event loop the paper assumes around the planner, §IV).
//
// Scaled setup: 6 hosts, 48 base streams, 600 events at the default
// trace mix (arrival-heavy with steady departures, occasional host
// failures/rejoins and monitor drift reports).
// Expected shape: the service consumes the whole trace, survives >= 1
// host failure, finishes with a valid committed deployment, the plan
// cache absorbs repeat arrivals (nonzero hits), and per-event latency
// stays bounded (max event << total).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/deadline.h"
#include "service/planning_service.h"
#include "workload/trace.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  ScenarioConfig config;
  config.queries = 400;
  config.seed = 11;
  PrintHeader("Service churn",
              "event-driven admission / departure / failure / drift",
              config.seed);
  Scenario scenario = MakeScenario(config);

  TraceConfig tc;
  tc.num_events = 600;
  tc.seed = config.seed;
  tc.min_failures = 2;
  tc.min_drift_reports = 3;
  Result<std::vector<Event>> trace = GenerateTrace(
      tc, scenario.workload, config.hosts, *scenario.catalog);
  SQPR_CHECK(trace.ok()) << trace.status().ToString();

  ServiceOptions options;
  options.planner.timeout_ms = 60;
  PlanningService service(scenario.cluster.get(), scenario.catalog.get(),
                          options);
  for (const Event& e : *trace) {
    SQPR_CHECK_OK(service.Enqueue(e));
  }

  Stopwatch watch;
  double max_event_ms = 0.0;
  while (service.HasPendingEvents()) {
    Result<EventOutcome> outcome = service.Step();
    SQPR_CHECK(outcome.ok()) << outcome.status().ToString();
    max_event_ms = std::max(max_event_ms, outcome->wall_ms);
  }
  const double total_ms = watch.ElapsedMillis();

  const ServiceStats& stats = service.stats();
  std::printf("\n%zu events in %.1f ms (%.1f events/s), max event %.1f ms\n",
              trace->size(), total_ms, 1000.0 * trace->size() / total_ms,
              max_event_ms);
  std::printf("arrivals %lld: admitted %lld (dedup %lld, cache %lld), "
              "rejected %lld\n",
              static_cast<long long>(stats.arrivals),
              static_cast<long long>(stats.admitted),
              static_cast<long long>(stats.dedup_hits),
              static_cast<long long>(stats.cache_fast_path),
              static_cast<long long>(stats.rejected));
  std::printf("churn: %lld departures, %lld failures, %lld joins, "
              "%lld drift reports; %lld evictions, %lld/%lld re-admitted\n",
              static_cast<long long>(stats.departures),
              static_cast<long long>(stats.host_failures),
              static_cast<long long>(stats.host_joins),
              static_cast<long long>(stats.monitor_reports),
              static_cast<long long>(stats.evictions),
              static_cast<long long>(stats.replanned_admitted),
              static_cast<long long>(stats.replanned_admitted +
                                     stats.replanned_rejected));
  std::printf("plan cache: %lld exact + %lld partial hits, %lld misses\n",
              static_cast<long long>(service.plan_cache().exact_hits()),
              static_cast<long long>(service.plan_cache().partial_hits()),
              static_cast<long long>(service.plan_cache().misses()));

  const Status audit = service.deployment().Validate();
  bool ok = true;
  ok &= ShapeCheck(stats.events == static_cast<int64_t>(trace->size()),
                   "every trace event consumed");
  ok &= ShapeCheck(stats.host_failures >= 2 && stats.monitor_reports >= 3,
                   "trace exercised failures and drift reports");
  ok &= ShapeCheck(audit.ok(), "final committed deployment validates");
  ok &= ShapeCheck(stats.admitted > 0, "service admitted queries");
  ok &= ShapeCheck(service.plan_cache().hits() > 0,
                   "plan cache absorbed repeat/sub-query arrivals");
  ok &= ShapeCheck(max_event_ms <= std::max(1000.0, total_ms / 4),
                   "per-event latency bounded (no event monopolised loop)");
  return ok ? 0 : 1;
}
