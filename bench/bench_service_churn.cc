// Service churn bench: sustained arrival/departure/failure/drift load
// through the continuous PlanningService (no paper figure — this
// measures the event loop the paper assumes around the planner, §IV).
//
// Scaled setup: 6 hosts, 48 base streams, 300 events at a drift-heavy
// trace mix (arrival-heavy with steady departures, frequent monitor
// drift reports and occasional host failures/rejoins), replayed twice:
// once with 1 worker thread and once with 4 solving the re-planning
// rounds off the loop thread. The solver is node-bounded (large wall
// deadline + fixed branch-and-bound budget), so both replays are
// deterministic and must commit bit-for-bit identical deployments — the
// worker count may only change how fast the rounds retire.
// Expected shape: both replays consume the whole trace, survive the
// failures, finish with identical valid committed deployments, the plan
// cache absorbs repeat arrivals, per-event latency stays bounded, and
// event throughput is higher with 4 workers than with 1.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/deadline.h"
#include "common/stats.h"
#include "service/planning_service.h"
#include "workload/trace.h"

using namespace sqpr;
using namespace sqpr::bench;

namespace {

struct RunResult {
  double total_ms = 0.0;
  double max_event_ms = 0.0;
  double events_per_s = 0.0;
  ServiceStats stats;
  std::string fingerprint;
  int64_t cache_hits = 0;
  size_t trace_events = 0;
  bool audit_ok = false;
};

RunResult Replay(int workers) {
  // Fresh scenario per replay: the drift reports install measured rates
  // into the catalog, so state must not leak between runs. Same seed =>
  // identical workload and trace.
  ScenarioConfig config;
  config.queries = 400;
  config.seed = 11;
  Scenario scenario = MakeScenario(config);

  TraceConfig tc;
  tc.num_events = 300;
  tc.seed = config.seed;
  tc.min_failures = 2;
  tc.min_drift_reports = 8;
  tc.drift_weight = 0.20;  // drift-heavy: keeps re-planning rounds full
  Result<std::vector<Event>> trace = GenerateTrace(
      tc, scenario.workload, config.hosts, *scenario.catalog);
  SQPR_CHECK(trace.ok()) << trace.status().ToString();

  ServiceOptions options;
  // Determinism across worker counts requires a deterministic solver:
  // bound by node budget, not by wall clock.
  options.planner.timeout_ms = 60000;
  options.planner.max_nodes = 200;
  options.replan.workers = workers;
  PlanningService service(scenario.cluster.get(), scenario.catalog.get(),
                          options);
  for (const Event& e : *trace) {
    SQPR_CHECK_OK(service.Enqueue(e));
  }

  RunResult result;
  result.trace_events = trace->size();
  Stopwatch watch;
  while (service.HasPendingEvents()) {
    Result<EventOutcome> outcome = service.Step();
    SQPR_CHECK(outcome.ok()) << outcome.status().ToString();
    result.max_event_ms = std::max(result.max_event_ms, outcome->wall_ms);
  }
  service.FinishInFlightRound();
  result.total_ms = watch.ElapsedMillis();
  result.events_per_s = 1000.0 * trace->size() / result.total_ms;
  result.stats = service.stats();
  result.fingerprint = service.deployment().Fingerprint();
  result.cache_hits = service.plan_cache().hits();
  result.audit_ok = service.deployment().Validate().ok();
  return result;
}

void PrintRun(const char* label, const RunResult& r) {
  std::printf("\n[%s] %zu events in %.1f ms (%.1f events/s), "
              "max event %.1f ms\n",
              label, r.trace_events, r.total_ms, r.events_per_s,
              r.max_event_ms);
  const ServiceStats& s = r.stats;
  std::printf("  arrivals %lld: admitted %lld (dedup %lld, cache %lld), "
              "rejected %lld\n",
              static_cast<long long>(s.arrivals),
              static_cast<long long>(s.admitted),
              static_cast<long long>(s.dedup_hits),
              static_cast<long long>(s.cache_fast_path),
              static_cast<long long>(s.rejected));
  std::printf("  churn: %lld departures, %lld failures, %lld joins, "
              "%lld drift reports; %lld evictions, %lld/%lld re-admitted\n",
              static_cast<long long>(s.departures),
              static_cast<long long>(s.host_failures),
              static_cast<long long>(s.host_joins),
              static_cast<long long>(s.monitor_reports),
              static_cast<long long>(s.evictions),
              static_cast<long long>(s.replanned_admitted),
              static_cast<long long>(s.replanned_admitted +
                                     s.replanned_rejected));
  std::printf("  rounds: %lld committed (%lld dispatched, %lld commit "
              "conflicts re-solved)\n",
              static_cast<long long>(s.replan_rounds),
              static_cast<long long>(s.replan_dispatches),
              static_cast<long long>(s.commit_conflicts));
  if (!s.solve_samples_ms.empty()) {
    std::printf("  solver wall-time: %zu solves, p50 %.2f ms, p90 %.2f ms, "
                "p99 %.2f ms, max %.2f ms\n",
                s.solve_samples_ms.size(),
                Percentile(s.solve_samples_ms, 0.50),
                Percentile(s.solve_samples_ms, 0.90),
                Percentile(s.solve_samples_ms, 0.99), s.solve_ms.max());
  }
  std::printf("  loop-thread barrier waits: %zu, avg %.2f ms, max %.2f ms\n",
              s.barrier_ms.count(), s.barrier_ms.mean(), s.barrier_ms.max());
}

}  // namespace

int main() {
  PrintHeader("Service churn",
              "event-driven admission / drift re-planning, 1 vs 4 workers",
              11);

  const RunResult one = Replay(/*workers=*/1);
  PrintRun("workers=1", one);
  const RunResult four = Replay(/*workers=*/4);
  PrintRun("workers=4", four);

  std::printf("\nspeedup (events/s, 4 vs 1 workers): %.2fx\n",
              four.events_per_s / one.events_per_s);

  bool ok = true;
  ok &= ShapeCheck(one.stats.events ==
                           static_cast<int64_t>(one.trace_events) &&
                       four.stats.events ==
                           static_cast<int64_t>(four.trace_events),
                   "every trace event consumed in both replays");
  ok &= ShapeCheck(one.stats.host_failures >= 2 &&
                       one.stats.monitor_reports >= 8,
                   "trace exercised failures and (heavy) drift reports");
  ok &= ShapeCheck(one.audit_ok && four.audit_ok,
                   "final committed deployments validate");
  ok &= ShapeCheck(one.stats.admitted > 0, "service admitted queries");
  ok &= ShapeCheck(one.cache_hits > 0,
                   "plan cache absorbed repeat/sub-query arrivals");
  ok &= ShapeCheck(one.fingerprint == four.fingerprint,
                   "worker count does not change committed deployments");
  ok &= ShapeCheck(one.stats.replanned_admitted ==
                           four.stats.replanned_admitted &&
                       one.stats.rejected == four.stats.rejected,
                   "worker count does not change admission statistics");
  ok &= ShapeCheck(
      one.max_event_ms <= std::max(1000.0, one.total_ms / 4) &&
          four.max_event_ms <= std::max(1000.0, four.total_ms / 4),
      "per-event latency bounded (no event monopolised loop)");
  // The parallel win needs parallel hardware: the rounds are CPU-bound
  // MILP solves, so with fewer cores than workers they partly (or, on
  // one core, entirely) time-slice and scheduling noise can swamp the
  // short trace. Gate the strict check on enough cores for the pool.
  if (std::thread::hardware_concurrency() >= 4) {
    ok &= ShapeCheck(four.events_per_s > one.events_per_s,
                     "4 workers outpace 1 on a drift-heavy trace");
  } else {
    std::printf("shape-check [SKIP] 4 workers outpace 1 on a drift-heavy "
                "trace (host has < 4 cores)\n");
  }
  return ok ? 0 : 1;
}
