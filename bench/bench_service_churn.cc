// Service churn bench: sustained load through the continuous
// PlanningService (no paper figure — this measures the event loop the
// paper assumes around the planner, §IV), in two scenarios:
//
//  * drift-heavy — arrival-heavy mix with steady departures, frequent
//    monitor drift reports and occasional host failures/rejoins: keeps
//    the re-planning rounds full, so the worker pool's solve offload
//    dominates.
//  * arrival-heavy — few evictions, lots of cache-miss arrivals while
//    rounds are in flight: measures the tentpole of the speculative
//    arrival path. Before it, every such arrival retired the whole
//    in-flight round (a solve-sized stall on the loop thread); now it
//    solves concurrently over the thread-safe catalog, which the
//    overlapped-arrival-solves counter makes visible.
//  * closed-loop — zero scripted monitor reports: the trace carries
//    ground-truth rate *trajectories* (constant/step/walk/periodic) and
//    the service measures its own committed deployment every few ticks
//    (§IV-C), detecting drift and dispatching re-planning rounds
//    entirely by itself (the auto_replan_rounds counter).
//
// Each scenario replays one trace with 0, 1 and 4 workers solving the
// re-planning rounds. The solver is node-bounded (large wall deadline +
// fixed branch-and-bound budget), so every replay is deterministic and
// all three must commit bit-for-bit identical deployments — the worker
// count may only change how much solve time overlaps event processing.
// Expected shape: every replay consumes the whole trace, survives the
// failures, finishes with identical valid committed deployments and
// identical admission statistics, the plan cache absorbs repeat
// arrivals, per-event latency stays bounded, arrival solves overlap
// in-flight rounds, and (given the cores) workers raise throughput.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/deadline.h"
#include "common/stats.h"
#include "service/planning_service.h"
#include "workload/trace.h"

using namespace sqpr;
using namespace sqpr::bench;

namespace {

struct RunResult {
  double total_ms = 0.0;
  double max_event_ms = 0.0;
  double events_per_s = 0.0;
  ServiceStats stats;
  std::string fingerprint;
  int64_t cache_hits = 0;
  size_t trace_events = 0;
  bool audit_ok = false;
};

RunResult Replay(const TraceConfig& trace_config, int workers,
                 bool closed_loop = false) {
  // Fresh scenario per replay: the drift reports install measured rates
  // into the catalog, so state must not leak between runs. Same seed =>
  // identical workload and trace.
  ScenarioConfig config;
  config.queries = 400;
  config.seed = 11;
  Scenario scenario = MakeScenario(config);

  Result<std::vector<Event>> trace = GenerateTrace(
      trace_config, scenario.workload, config.hosts, *scenario.catalog);
  SQPR_CHECK(trace.ok()) << trace.status().ToString();

  ServiceOptions options;
  // Determinism across worker counts requires a deterministic solver:
  // bound by node budget, not by wall clock.
  options.planner.timeout_ms = 60000;
  options.planner.max_nodes = 200;
  options.replan.workers = workers;
  options.closed_loop = closed_loop;
  options.telemetry.measure_period = 3;
  options.telemetry.seed = trace_config.seed;
  options.telemetry.ewma_alpha = 0.6;
  options.telemetry.noise = 0.03;
  PlanningService service(scenario.cluster.get(), scenario.catalog.get(),
                          options);
  for (const Event& e : *trace) {
    SQPR_CHECK_OK(service.Enqueue(e));
  }

  RunResult result;
  result.trace_events = trace->size();
  Stopwatch watch;
  while (service.HasPendingEvents()) {
    Result<EventOutcome> outcome = service.Step();
    SQPR_CHECK(outcome.ok()) << outcome.status().ToString();
    result.max_event_ms = std::max(result.max_event_ms, outcome->wall_ms);
  }
  service.FinishInFlightRound();
  result.total_ms = watch.ElapsedMillis();
  result.events_per_s = 1000.0 * trace->size() / result.total_ms;
  result.stats = service.stats();
  result.fingerprint = service.deployment().Fingerprint();
  result.cache_hits = service.plan_cache().hits();
  result.audit_ok = service.deployment().Validate().ok();
  return result;
}

void PrintRun(const char* label, const RunResult& r) {
  std::printf("\n[%s] %zu events in %.1f ms (%.1f events/s), "
              "max event %.1f ms\n",
              label, r.trace_events, r.total_ms, r.events_per_s,
              r.max_event_ms);
  const ServiceStats& s = r.stats;
  std::printf("  arrivals %lld: admitted %lld (dedup %lld, cache %lld), "
              "rejected %lld; %lld solves overlapped in-flight rounds\n",
              static_cast<long long>(s.arrivals),
              static_cast<long long>(s.admitted),
              static_cast<long long>(s.dedup_hits),
              static_cast<long long>(s.cache_fast_path),
              static_cast<long long>(s.rejected),
              static_cast<long long>(s.overlapped_arrival_solves));
  std::printf("  churn: %lld departures, %lld failures, %lld joins, "
              "%lld drift reports; %lld evictions, %lld/%lld re-admitted\n",
              static_cast<long long>(s.departures),
              static_cast<long long>(s.host_failures),
              static_cast<long long>(s.host_joins),
              static_cast<long long>(s.monitor_reports),
              static_cast<long long>(s.evictions),
              static_cast<long long>(s.replanned_admitted),
              static_cast<long long>(s.replanned_admitted +
                                     s.replanned_rejected));
  std::printf("  rounds: %lld committed (%lld dispatched, %lld commit "
              "conflicts re-solved)\n",
              static_cast<long long>(s.replan_rounds),
              static_cast<long long>(s.replan_dispatches),
              static_cast<long long>(s.commit_conflicts));
  if (!s.solve_samples_ms.empty()) {
    std::printf("  solver wall-time: %zu solves, p50 %.2f ms, p90 %.2f ms, "
                "p99 %.2f ms, max %.2f ms\n",
                s.solve_samples_ms.size(),
                Percentile(s.solve_samples_ms, 0.50),
                Percentile(s.solve_samples_ms, 0.90),
                Percentile(s.solve_samples_ms, 0.99), s.solve_ms.max());
  }
  std::printf("  loop-thread barrier waits: %zu, avg %.2f ms, max %.2f ms\n",
              s.barrier_ms.count(), s.barrier_ms.mean(), s.barrier_ms.max());
  if (s.rate_directives + s.measurement_ticks > 0) {
    std::printf("  closed loop: %lld rate directives, %lld measurement "
                "ticks, %lld auto re-plan rounds\n",
                static_cast<long long>(s.rate_directives),
                static_cast<long long>(s.measurement_ticks),
                static_cast<long long>(s.auto_replan_rounds));
  }
}

bool DeterminismChecks(const char* scenario, const RunResult& zero,
                       const RunResult& one, const RunResult& four) {
  bool ok = true;
  std::printf("\n-- %s: worker-count invariance --\n", scenario);
  ok &= ShapeCheck(zero.stats.events ==
                           static_cast<int64_t>(zero.trace_events) &&
                       one.stats.events ==
                           static_cast<int64_t>(one.trace_events) &&
                       four.stats.events ==
                           static_cast<int64_t>(four.trace_events),
                   "every trace event consumed in all three replays");
  ok &= ShapeCheck(zero.audit_ok && one.audit_ok && four.audit_ok,
                   "final committed deployments validate");
  ok &= ShapeCheck(zero.fingerprint == one.fingerprint &&
                       zero.fingerprint == four.fingerprint,
                   "worker count does not change committed deployments");
  ok &= ShapeCheck(
      zero.stats.admitted == one.stats.admitted &&
          zero.stats.admitted == four.stats.admitted &&
          zero.stats.rejected == one.stats.rejected &&
          zero.stats.rejected == four.stats.rejected &&
          zero.stats.replanned_admitted == one.stats.replanned_admitted &&
          zero.stats.replanned_admitted == four.stats.replanned_admitted &&
          zero.stats.overlapped_arrival_solves ==
              one.stats.overlapped_arrival_solves &&
          zero.stats.overlapped_arrival_solves ==
              four.stats.overlapped_arrival_solves &&
          zero.stats.measurement_ticks == one.stats.measurement_ticks &&
          zero.stats.measurement_ticks == four.stats.measurement_ticks &&
          zero.stats.auto_replan_rounds == one.stats.auto_replan_rounds &&
          zero.stats.auto_replan_rounds == four.stats.auto_replan_rounds,
      "worker count does not change admission statistics");
  ok &= ShapeCheck(
      zero.max_event_ms <= std::max(1000.0, zero.total_ms / 4) &&
          one.max_event_ms <= std::max(1000.0, one.total_ms / 4) &&
          four.max_event_ms <= std::max(1000.0, four.total_ms / 4),
      "per-event latency bounded (no event monopolised loop)");
  return ok;
}

}  // namespace

int main() {
  PrintHeader("Service churn",
              "event-driven admission / drift re-planning / speculative "
              "arrivals, 0 vs 1 vs 4 workers",
              11);

  // ---- Scenario 1: drift-heavy (re-planning rounds stay full). ----
  TraceConfig drifty;
  drifty.num_events = 300;
  drifty.seed = 11;
  drifty.min_failures = 2;
  drifty.min_drift_reports = 8;
  drifty.drift_weight = 0.20;

  std::printf("\n==== scenario: drift-heavy ====\n");
  const RunResult d0 = Replay(drifty, /*workers=*/0);
  PrintRun("workers=0", d0);
  const RunResult d1 = Replay(drifty, /*workers=*/1);
  PrintRun("workers=1", d1);
  const RunResult d4 = Replay(drifty, /*workers=*/4);
  PrintRun("workers=4", d4);
  std::printf("\nspeedup (events/s, 4 vs 0 workers): %.2fx\n",
              d4.events_per_s / d0.events_per_s);

  // ---- Scenario 2: arrival-heavy (the speculative-arrival stall
  // removal: cache-miss arrivals solving while rounds are in flight,
  // instead of retiring them first). ----
  TraceConfig arrivally;
  arrivally.num_events = 300;
  arrivally.seed = 23;
  arrivally.arrival_weight = 1.0;
  arrivally.departure_weight = 0.30;
  arrivally.drift_weight = 0.10;  // enough evictions to keep rounds live
  arrivally.failure_weight = 0.02;
  arrivally.min_failures = 1;
  arrivally.min_drift_reports = 6;

  std::printf("\n==== scenario: arrival-heavy ====\n");
  const RunResult a0 = Replay(arrivally, /*workers=*/0);
  PrintRun("workers=0", a0);
  const RunResult a1 = Replay(arrivally, /*workers=*/1);
  PrintRun("workers=1", a1);
  const RunResult a4 = Replay(arrivally, /*workers=*/4);
  PrintRun("workers=4", a4);
  std::printf("\nspeedup (events/s, 1 vs 0 workers): %.2fx — round solves "
              "move off the loop thread and overlap arrival admission\n",
              a1.events_per_s / a0.events_per_s);

  // ---- Scenario 3: closed-loop (§IV-C self-measurement: the trace
  // scripts ground-truth rate trajectories and *no* monitor reports;
  // drift detection and re-planning fire from the service's own
  // periodic measurements). ----
  TraceConfig closed;
  closed.num_events = 220;
  closed.seed = 31;
  closed.closed_loop = true;
  closed.tick_weight = 0.55;       // measurements ride ticks
  closed.drift_weight = 0.18;      // rate directives
  closed.min_drift_reports = 8;
  closed.min_failures = 1;

  std::printf("\n==== scenario: closed-loop ====\n");
  const RunResult c0 = Replay(closed, /*workers=*/0, /*closed_loop=*/true);
  PrintRun("workers=0", c0);
  const RunResult c1 = Replay(closed, /*workers=*/1, /*closed_loop=*/true);
  PrintRun("workers=1", c1);
  const RunResult c4 = Replay(closed, /*workers=*/4, /*closed_loop=*/true);
  PrintRun("workers=4", c4);

  bool ok = true;
  ok &= DeterminismChecks("drift-heavy", d0, d1, d4);
  ok &= DeterminismChecks("arrival-heavy", a0, a1, a4);
  ok &= DeterminismChecks("closed-loop", c0, c1, c4);

  std::printf("\n-- scenario-specific shape --\n");
  ok &= ShapeCheck(d0.stats.host_failures >= 2 &&
                       d0.stats.monitor_reports >= 8,
                   "drift-heavy trace exercised failures and drift");
  ok &= ShapeCheck(d0.stats.admitted > 0, "service admitted queries");
  ok &= ShapeCheck(d0.cache_hits > 0 && a0.cache_hits > 0,
                   "plan cache absorbed repeat/sub-query arrivals");
  ok &= ShapeCheck(a0.stats.overlapped_arrival_solves > 0,
                   "cache-miss arrivals solved while rounds were in flight "
                   "(the removed FinishInFlightRound stall)");
  ok &= ShapeCheck(c0.stats.monitor_reports == 0 &&
                       c0.stats.rate_directives >= 8,
                   "closed-loop trace scripts trajectories, zero monitor "
                   "reports");
  ok &= ShapeCheck(c0.stats.measurement_ticks > 0,
                   "closed loop performed periodic self-measurements");
  ok &= ShapeCheck(c0.stats.auto_replan_rounds > 0,
                   "self-measured drift triggered re-planning with no "
                   "scripted measurement anywhere in the trace");
  // The parallel win needs parallel hardware: the rounds are CPU-bound
  // MILP solves, so with fewer cores than solver threads (+ the loop
  // thread) they partly time-slice and scheduling noise can swamp the
  // short trace. Gate the throughput checks on core count, and leave a
  // 10% noise margin so a loaded CI host does not fail a correct build
  // (the speedup itself is printed above for eyeballing).
  if (std::thread::hardware_concurrency() >= 4) {
    ok &= ShapeCheck(d4.events_per_s > 0.9 * d0.events_per_s,
                     "4 workers at least match inline rounds on a "
                     "drift-heavy trace");
  } else {
    std::printf("shape-check [SKIP] 4 workers vs inline rounds "
                "(host has < 4 cores)\n");
  }
  if (std::thread::hardware_concurrency() >= 2) {
    ok &= ShapeCheck(a1.events_per_s > 0.9 * a0.events_per_s,
                     "1 worker at least matches inline rounds on an "
                     "arrival-heavy trace (overlapped arrival solves)");
  } else {
    std::printf("shape-check [SKIP] 1 worker vs inline rounds "
                "(host has < 2 cores)\n");
  }
  return ok ? 0 : 1;
}
