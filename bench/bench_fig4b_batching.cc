// Fig. 4(b): efficiency with batching — submitting queries in batches of
// n (with an n-fold timeout) reduces the problem-reduction opportunities
// and hence admissions.
//
// Paper setup: batches of 2-5, timeout 30n s. Scaled: batches of 1-5,
// timeout 60n ms. Expected shape: larger batches admit no more (and
// typically fewer) queries than smaller ones by the end of the run.

#include <vector>

#include "bench/bench_util.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  ScenarioConfig config;
  config.queries = 60;
  PrintHeader("Fig 4(b)", "planning efficiency with batched submission",
              config.seed);

  const std::vector<int> batch_sizes = {1, 2, 3, 5};
  std::vector<std::vector<int>> admitted_series(batch_sizes.size());

  for (size_t bi = 0; bi < batch_sizes.size(); ++bi) {
    const int n = batch_sizes[bi];
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = 60;  // batch gets n * 60 ms inside SubmitBatch
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
    int admitted = 0;
    for (size_t i = 0; i < s.workload.queries.size(); i += n) {
      std::vector<StreamId> batch(
          s.workload.queries.begin() + i,
          s.workload.queries.begin() +
              std::min(i + n, s.workload.queries.size()));
      auto stats = planner.SubmitBatch(batch);
      SQPR_CHECK(stats.ok());
      for (size_t j = 0; j < stats->size(); ++j) {
        admitted += (*stats)[j].admitted && !(*stats)[j].already_served;
        admitted_series[bi].push_back(admitted);
      }
    }
  }

  std::printf("# submitted  batch1  batch2  batch3  batch5\n");
  for (size_t i = 9; i < admitted_series[0].size(); i += 10) {
    std::printf("%10zu", i + 1);
    for (const auto& series : admitted_series) {
      std::printf("  %6d", series[std::min(i, series.size() - 1)]);
    }
    std::printf("\n");
  }

  const auto final_of = [&](size_t bi) { return admitted_series[bi].back(); };
  ShapeCheck(final_of(3) <= final_of(0),
             "batch-of-5 admits no more than one-at-a-time (paper: batching "
             "hurts)");
  // Small batches sit within noise of one-at-a-time (they also get an
  // n-fold timeout); the paper's signal is the clear batch-of-5 loss.
  ShapeCheck(final_of(2) <= final_of(0) + 2 && final_of(1) <= final_of(0) + 2,
             "intermediate batch sizes stay within noise of one-at-a-time");
  return 0;
}
