// Objective-weight ablation (§III-B / §IV-A, the Fig. 2 discussion):
// sweeping the load-balance weight λ4 against the CPU-minimisation
// weight λ3 trades consolidation (idle hosts that could be powered
// down) against an even load distribution. The paper argues a planner
// must expose this control; this bench regenerates the trade-off curve
// on the standard scenario and additionally reports the admission
// fragmentation cost of balancing (operators spread thinly block large
// queries later in the sequence).

#include <cmath>
#include <vector>

#include "bench/bench_util.h"
#include "planner/sqpr/sqpr_planner.h"

using namespace sqpr;
using namespace sqpr::bench;

int main() {
  PrintHeader("λ sweep (Fig. 2 trade-off)",
              "load-balancing vs consolidation vs admissions", 1);

  struct Setting {
    double lambda3, lambda4;
    const char* label;
  };
  // λ3 <= 0 means "use the §IV-A default scaling"; the planner replaces
  // non-positive λ3 by its default, so pass explicit positives here.
  const std::vector<Setting> settings = {
      {1.0, 0.0, "consolidate"},
      {0.5, 0.5, "mixed"},
      {1e-6, 1.0, "balance"},
  };

  std::printf(
      "# load  setting       admitted  idle_hosts  max_cpu  stdev_cpu\n");
  std::vector<int> admitted_by(settings.size());
  std::vector<int> idle_by(settings.size());      // low-load regime
  std::vector<double> max_by(settings.size());    // saturated regime
  for (const int queries : {12, 70}) {
  const bool low_load = queries == 12;
  for (size_t i = 0; i < settings.size(); ++i) {
    ScenarioConfig config;
    config.hosts = 6;
    config.queries = queries;
    Scenario s = MakeScenario(config);
    SqprPlanner::Options options;
    options.timeout_ms = 150;
    options.model.weights.lambda3 = settings[i].lambda3;
    options.model.weights.lambda4 = settings[i].lambda4;
    SqprPlanner planner(s.cluster.get(), s.catalog.get(), options);
    int admitted = 0;
    for (StreamId q : s.workload.queries) {
      auto stats = planner.SubmitQuery(q);
      SQPR_CHECK(stats.ok());
      admitted += stats->admitted && !stats->already_served;
    }

    const Deployment& dep = planner.deployment();
    int idle = 0;
    double max_cpu = 0.0, mean = 0.0;
    for (HostId h = 0; h < config.hosts; ++h) {
      const double u = dep.CpuUsed(h) / s.cluster->host(h).cpu;
      if (dep.OperatorsOn(h).empty()) ++idle;
      max_cpu = std::max(max_cpu, u);
      mean += u;
    }
    mean /= config.hosts;
    double var = 0.0;
    for (HostId h = 0; h < config.hosts; ++h) {
      const double u = dep.CpuUsed(h) / s.cluster->host(h).cpu;
      var += (u - mean) * (u - mean);
    }
    const double stdev = std::sqrt(var / config.hosts);

    std::printf("%-6s %-13s %8d  %10d  %7.2f  %9.3f\n",
                low_load ? "low" : "high", settings[i].label, admitted, idle,
                max_cpu, stdev);
    admitted_by[i] = admitted;
    if (low_load) idle_by[i] = idle;
    if (!low_load) max_by[i] = max_cpu;
  }
  }

  // The paper's qualitative claims: consolidation leaves hosts idle (to
  // power down); balancing lowers the hottest host.
  ShapeCheck(idle_by.front() >= idle_by.back(),
             "under low load, consolidation leaves at least as many idle "
             "hosts as balancing (Fig. 2(a) vs 2(b))");
  ShapeCheck(idle_by.front() > 0,
             "under low load, consolidation powers down at least one host");
  ShapeCheck(max_by.back() <= max_by.front() + 1e-9,
             "balancing does not increase the hottest host's load");
  return 0;
}
